package rme

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// Snapshot and Restore model non-volatile memory across whole-system
// failures (the system-wide crash–recover scenario of Golab & Hendler,
// PODC 2018, which the paper's related work discusses): the mutex's entire
// shared state — including a held lock, queued waiters' nodes and every
// recovery state machine — is serialized, and a later process lifetime
// reconstructs it byte for byte. Every process then recovers exactly as
// after an individual crash: its next Lock (or Passage) runs the Recover
// segment against the restored state.
//
// Snapshot must be taken at a quiescent point: no Lock, Unlock or Passage
// call may be executing concurrently (a held-but-idle lock is fine — that
// is precisely the power-failure-while-holding case). The contract is
// enforced by detection, not trust: Snapshot verifies its copy with a
// double scan of the arena and returns ErrSnapshotConcurrent instead of
// serializing a torn image. Snapshots require node reclamation (the
// default), which keeps the arena layout fixed, and the default padded
// arena layout (not WithUnpaddedArena).

// snapMagic identifies the snapshot format. RMESNAP2 is the cache-line-
// padded arena layout; RMESNAP1 streams (the old dense layout) are
// rejected rather than silently misinterpreted, since word addresses
// moved when the layout changed.
const snapMagic = "RMESNAP2"

// snapTable is the CRC-64 polynomial for the integrity footer appended to
// every snapshot: the checksum of header plus body, little-endian, trails
// the stream so that torn writes (a crash partway through Snapshot) and
// bit corruption are both detected by Restore.
var snapTable = crc64.MakeTable(crc64.ECMA)

var (
	// ErrSnapshotUnsupported is returned by Snapshot for mutexes built
	// with WithoutReclamation, whose arena layout grows over time.
	ErrSnapshotUnsupported = errors.New("rme: snapshot requires node reclamation (the default)")
	// ErrBadSnapshot is returned by Restore when the stream is not a
	// valid snapshot.
	ErrBadSnapshot = errors.New("rme: invalid snapshot stream")
	// ErrSnapshotConcurrent is returned by Snapshot when the quiescence
	// contract is violated: a Lock, Unlock or Passage mutated the arena
	// while the snapshot was being taken, so the copy may be torn.
	ErrSnapshotConcurrent = errors.New("rme: arena mutated during snapshot (quiescence violated)")
)

// Snapshot serializes the mutex's shared state to w. See the package
// documentation of this file for the quiescence contract.
func (m *Mutex) Snapshot(w io.Writer) error {
	if !m.cfg.reclamation {
		return ErrSnapshotUnsupported
	}
	if m.cfg.unpadded {
		return fmt.Errorf("%w: unpadded arenas are a benchmarking layout only", ErrSnapshotUnsupported)
	}
	words, err := m.arena.SnapshotWords()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotConcurrent, err)
	}
	header := make([]byte, 0, 8+5*8)
	header = append(header, snapMagic...)
	for _, v := range []uint64{
		uint64(m.n),
		uint64(m.cfg.base),
		uint64(m.cfg.levels),
		uint64(m.cfg.slack),
		uint64(len(words)),
	} {
		header = binary.LittleEndian.AppendUint64(header, v)
	}
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("rme: writing snapshot header: %w", err)
	}
	buf := make([]byte, 8*len(words))
	for i, v := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("rme: writing snapshot words: %w", err)
	}
	sum := crc64.Update(crc64.Update(0, snapTable, header), snapTable, buf)
	var footer [8]byte
	binary.LittleEndian.PutUint64(footer[:], sum)
	if _, err := w.Write(footer[:]); err != nil {
		return fmt.Errorf("rme: writing snapshot checksum: %w", err)
	}
	return nil
}

// Restore reconstructs a mutex from a snapshot written by Snapshot. fail
// may install a failure-injection hook in the new lifetime (nil for none).
// Every process of the previous lifetime is considered crashed: its next
// Lock call performs recovery.
func Restore(r io.Reader, fail FailFunc) (*Mutex, error) {
	header := make([]byte, 8+5*8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadSnapshot, err)
	}
	if string(header[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	fields := make([]uint64, 5)
	for i := range fields {
		fields[i] = binary.LittleEndian.Uint64(header[8+8*i:])
	}
	n := int(fields[0])
	base := Base(fields[1])
	levels := int(fields[2])
	slack := int(fields[3])
	nwords := int(fields[4])
	if n < 1 || levels < 1 || nwords < 1 || nwords > 1<<30 {
		return nil, fmt.Errorf("%w: implausible header (n=%d levels=%d words=%d)", ErrBadSnapshot, n, levels, nwords)
	}

	// Verify the integrity footer before acting on any header field: a
	// corrupted base/levels value must surface as ErrBadSnapshot, not as a
	// configuration error from New.
	buf := make([]byte, 8*nwords)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: short body: %v", ErrBadSnapshot, err)
	}
	var footer [8]byte
	if _, err := io.ReadFull(r, footer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum footer (truncated stream?): %v", ErrBadSnapshot, err)
	}
	want := binary.LittleEndian.Uint64(footer[:])
	got := crc64.Update(crc64.Update(0, snapTable, header), snapTable, buf)
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %016x, computed %016x)", ErrBadSnapshot, want, got)
	}

	opts := []Option{WithBase(base), WithLevels(levels)}
	if slack > 0 {
		opts = append(opts, WithSlack(slack))
	}
	if fail != nil {
		opts = append(opts, WithFailures(fail))
	}
	m, err := New(n, opts...)
	if err != nil {
		return nil, err
	}

	words := make([]uint64, nwords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	if err := m.arena.SetWords(words); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return m, nil
}

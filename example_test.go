package rme_test

import (
	"fmt"

	"rme"
)

// The zero-ceremony path: create a mutex for a fixed set of processes and
// run passages. Without failure injection a Passage always succeeds.
func ExampleNew() {
	m, err := rme.New(4)
	if err != nil {
		panic(err)
	}
	counter := 0
	for pid := 0; pid < 4; pid++ {
		m.Passage(pid, func() { counter++ })
	}
	fmt.Println(counter)
	// Output: 4
}

// Lock and Unlock expose the paper's segments directly: Lock runs Recover
// and Enter, Unlock runs Exit. Calling Lock again after a crash — with
// the same process identifier — performs recovery.
func ExampleMutex_Lock() {
	m, err := rme.New(2)
	if err != nil {
		panic(err)
	}
	m.Lock(0)
	fmt.Println("process 0 holds the lock")
	m.Unlock(0)
	m.Lock(1)
	fmt.Println("process 1 holds the lock")
	m.Unlock(1)
	// Output:
	// process 0 holds the lock
	// process 1 holds the lock
}

// A crash inside the critical section is recovered by retrying the
// passage: the bounded critical-section re-entry property guarantees the
// crashed process re-enters before any other process, so an idempotent
// critical section completes exactly once.
func ExampleCrash() {
	m, err := rme.New(2)
	if err != nil {
		panic(err)
	}
	runs := 0
	for !m.Passage(0, func() {
		runs++
		if runs == 1 {
			rme.Crash(0) // die while holding the lock
		}
	}) {
		fmt.Println("crashed; recovering")
	}
	fmt.Println("critical section ran", runs, "times")
	// Output:
	// crashed; recovering
	// critical section ran 2 times
}

// WithMetrics attaches the exact RMR accounting layer; MetricsSnapshot
// reads a tear-free aggregate at any time. Failure-free passages resolve
// at BA-Lock level 1, the fast path.
func ExampleWithMetrics() {
	m, err := rme.New(2, rme.WithMetrics())
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		m.Passage(0, func() {})
	}
	s, ok := m.MetricsSnapshot()
	fmt.Println(ok, s.Passages, s.FastPath, s.Crashes)
	// Output: true 3 3 0
}

// WithTracing attaches the flight recorder: per-process rings of compact
// passage events. FlightRecording snapshots them tear-free; the result
// serializes to the rme-flight/v1 interchange format that cmd/rmetrace
// renders as a Chrome trace or ASCII timeline.
func ExampleWithTracing() {
	m, err := rme.New(2, rme.WithTracing(rme.TracingOptions{}))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		m.Passage(0, func() {})
	}
	rec, ok := m.FlightRecording()
	if !ok {
		panic("recorder not configured")
	}
	enters := 0
	for _, ev := range rec.Procs[0] {
		if ev.Kind.String() == "cs-enter" {
			enters++
		}
	}
	fmt.Println(rec.Source, rec.Clock, enters)
	// Output: native ns 3
}

// Options select the base lock, recursion depth and failure injection.
func ExampleWithBase() {
	m, err := rme.New(8,
		rme.WithBase(rme.BaseArbTree), // O(log n / log log n) worst case
		rme.WithLevels(2),
	)
	if err != nil {
		panic(err)
	}
	ok := m.Passage(3, func() {})
	fmt.Println(ok)
	// Output: true
}

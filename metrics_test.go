package rme_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rme"
)

// TestMetricsDisabledNoop pins the WithMetrics-off contract: no snapshot
// is available and passages run on unwrapped ports.
func TestMetricsDisabledNoop(t *testing.T) {
	m, err := rme.New(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Lock(0)
	m.Unlock(0)
	if _, ok := m.MetricsSnapshot(); ok {
		t.Fatal("MetricsSnapshot reported metrics without WithMetrics")
	}
}

// TestMetricsFailureFree pins the F=0 invariants end to end on the real
// lock: every passage is counted, none escalates past level 1, and the
// per-passage RMR histogram holds exactly the passage count.
func TestMetricsFailureFree(t *testing.T) {
	const n, per = 4, 50
	m, err := rme.New(n, rme.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				m.Lock(pid)
				m.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	s, ok := m.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics not enabled")
	}
	if s.Passages != n*per {
		t.Fatalf("passages = %d, want %d", s.Passages, n*per)
	}
	if s.Crashes != 0 || s.Recoveries != 0 || s.SlowPath != 0 {
		t.Fatalf("failure-free run recorded failures: %+v", s)
	}
	if s.MaxLevel() != 1 {
		t.Fatalf("escalated to level %d with no failures", s.MaxLevel())
	}
	if s.FastPath != n*per || s.RMRHist.Total() != n*per {
		t.Fatalf("fast=%d hist=%d, want both %d", s.FastPath, s.RMRHist.Total(), n*per)
	}
	if s.FilterFAS == 0 || s.SplitterTries == 0 || s.RMRs == 0 {
		t.Fatalf("label counters empty: %+v", s)
	}
}

// TestRaceStressMetrics is the metrics-enabled counterpart of
// TestRaceStress, run under -race in CI: concurrent passages with
// injected failures while a sampler goroutine reads snapshots mid-flight.
// The counters must be tear-free (snapshots only ever grow) and the final
// snapshot must sum exactly: completed passages equal the work done, the
// level histogram and the RMR histogram each hold exactly the passage
// count, and crashes equal the injected failure count.
func TestRaceStressMetrics(t *testing.T) {
	n := 8
	passages := 400
	maxInjected := int64(300)
	if testing.Short() {
		passages = 60
		maxInjected = 40
	}
	var injected atomic.Int64
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i) + 202))
	}
	fail := func(pid int) bool {
		if injected.Load() >= maxInjected {
			return false
		}
		if rngs[pid].Float64() < 0.01 {
			injected.Add(1)
			return true
		}
		return false
	}
	m, err := rme.New(n, rme.WithMetrics(), rme.WithFailures(fail))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent sampler: snapshots must be consistent (monotone totals)
	// while passages are in flight.
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s, _ := m.MetricsSnapshot()
			if s.Passages < last {
				t.Error("snapshot passage count went backwards")
				return
			}
			last = s.Passages
		}
	}()

	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < passages; k++ {
				for !m.Passage(pid, func() {}) {
					// Crashed mid-acquisition: recover and retry.
				}
			}
		}(pid)
	}
	wg.Wait()
	close(stop)
	<-samplerDone

	s, ok := m.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics not enabled")
	}
	want := uint64(n * passages)
	inj := uint64(injected.Load())
	if s.Passages != want {
		t.Fatalf("passages = %d, want exactly %d", s.Passages, want)
	}
	if s.Crashes != inj {
		t.Fatalf("crashes = %d, want %d injected", s.Crashes, inj)
	}
	if s.FastPath+s.SlowPath != want {
		t.Fatalf("fast %d + slow %d != %d", s.FastPath, s.SlowPath, want)
	}
	var levels uint64
	for _, v := range s.LevelHist {
		levels += v
	}
	if levels != want {
		t.Fatalf("level hist sums to %d, want %d", levels, want)
	}
	if s.RMRHist.Total() != want {
		t.Fatalf("RMR hist holds %d passages, want %d", s.RMRHist.Total(), want)
	}
	if inj == 0 {
		t.Fatal("no failures injected; the stress run must exercise recovery")
	}
	if s.Recoveries == 0 || s.Recoveries > s.Crashes {
		t.Fatalf("recoveries = %d with %d crashes", s.Recoveries, s.Crashes)
	}
}

// TestMetricsLabeledFailures pins WithLabeledFailures: a hook keyed on
// the filter FAS label fires, the crash is accounted, and the passage
// completes on retry.
func TestMetricsLabeledFailures(t *testing.T) {
	fired := false
	hook := func(pid int, label string) bool {
		if !fired && label == "F1:fas" {
			fired = true
			return true
		}
		return false
	}
	m, err := rme.New(2, rme.WithMetrics(), rme.WithLabeledFailures(hook))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for !m.Passage(0, func() { got++ }) {
	}
	if !fired {
		t.Fatal("labeled hook never saw the filter FAS")
	}
	if got != 1 {
		t.Fatalf("critical section ran %d times, want 1", got)
	}
	s, _ := m.MetricsSnapshot()
	if s.Crashes != 1 || s.Passages != 1 || s.Recoveries != 1 {
		t.Fatalf("snapshot %+v, want 1 crash, 1 passage, 1 recovery", s)
	}
}

// Command rmebench regenerates every table and figure of Dhoked & Mittal,
// "An Adaptive Approach to Recoverable Mutual Exclusion" (PODC 2020), by
// measuring the implementations in this repository on the RMR-exact
// shared-memory simulator.
//
// Usage:
//
//	rmebench [flags] <experiment>
//
// Experiments:
//
//	table1       Table 1: RMRs per passage, three failure scenarios, all locks
//	table2       Table 2: performance-measure classification
//	figure1      Figure 1: sub-queue fragmentation after unsafe failures
//	figure2      Figure 2: the semi-adaptive framework, with routing trace
//	figure3      Figure 3: the recursive framework, with escalation trace
//	adaptivity   Theorem 5.18: RMRs vs F with √F fit (headline result)
//	escalation   Theorem 5.17: escalation depth vs failures
//	batch        Theorem 7.1: batch vs independent failures
//	resp         Theorem 4.2: WR-Lock responsiveness
//	components   Theorems 4.7/5.6: O(1) component costs
//	scale        failure-free RMRs vs n: the complexity curves of Table 1
//	ablation     the price of each property, from plain MCS up
//	reclaim      Section 7.2: bounded space via reclamation
//	superpassage Section 7.3: super-passage cost under repeated self-crashes
//	all          everything above, in order
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rme/internal/bench"
)

func main() {
	var (
		n        = flag.Int("n", 16, "number of processes")
		requests = flag.Int("requests", 5, "satisfied requests per process")
		failures = flag.Int("failures", 0, "failure budget for the F-failures scenario (default n)")
		seeds    = flag.String("seeds", "1,2,3", "comma-separated seeds to average over")
		seed     = flag.Int64("seed", 21, "seed for single-run figures")
		csv      = flag.Bool("csv", false, "emit tables as CSV (figures stay textual)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rmebench [flags] <experiment>\nexperiments: table1 table2 figure1 figure2 figure3 adaptivity escalation batch resp components reclaim superpassage all\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var seedList []int64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmebench: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		seedList = append(seedList, v)
	}
	opts := bench.Opts{N: *n, Requests: *requests, Failures: *failures, Seeds: seedList}

	if err := run(flag.Arg(0), opts, *seed, *csv); err != nil {
		fmt.Fprintf(os.Stderr, "rmebench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, opts bench.Opts, seed int64, csv bool) error {
	show := func(t *bench.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}
	switch exp {
	case "table1":
		for _, t := range bench.Table1(opts) {
			show(t)
		}
	case "table2":
		show(bench.Table2(opts))
	case "figure1":
		fmt.Println(bench.Figure1(seed))
	case "figure2":
		fmt.Println(bench.Figure2(seed))
	case "figure3":
		fmt.Println(bench.Figure3(opts))
	case "adaptivity":
		show(bench.Adaptivity(opts))
	case "escalation":
		show(bench.Escalation(opts))
	case "batch":
		show(bench.Batch(opts))
	case "resp":
		show(bench.Responsiveness(opts))
	case "components":
		show(bench.Components())
	case "scale":
		show(bench.Scale(opts))
	case "ablation":
		show(bench.Ablation(opts))
	case "reclaim":
		show(bench.Reclaim(opts))
	case "superpassage":
		show(bench.SuperPassage(opts))
	case "all":
		for _, e := range []string{"table1", "table2", "figure1", "figure2", "figure3",
			"adaptivity", "escalation", "batch", "resp", "components", "scale", "ablation", "reclaim", "superpassage"} {
			if err := run(e, opts, seed, csv); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

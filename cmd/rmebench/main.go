// Command rmebench regenerates every table and figure of Dhoked & Mittal,
// "An Adaptive Approach to Recoverable Mutual Exclusion" (PODC 2020), by
// measuring the implementations in this repository on the RMR-exact
// shared-memory simulator, and benchmarks the real sync/atomic backend.
//
// Usage:
//
//	rmebench [flags] <experiment>
//
// Run `rmebench` with no arguments for the experiment list: it is derived
// from the same registry that dispatches them (and pinned by test), so the
// documentation cannot drift from the implementation. Highlights:
//
//	adaptivity   Theorem 5.18: RMRs vs F with √F fit (headline result)
//	native       wall-clock throughput of the sync/atomic backend
//	metrics      exact CC-model RMR distributions (BENCH_metrics.json)
//	des          virtual-time discrete-event traffic: arrival-rate ramp to
//	             contention collapse, crash storms, Zipf keyspaces,
//	             stragglers (BENCH_des.json)
//	all          everything, in registry order
//
// With -json, tables (and the native-style reports) are emitted as JSON
// documents instead of text — the format archived as BENCH_*.json (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rme/internal/bench"
	"rme/internal/buildinfo"
)

// options bundles every experiment's parsed configuration.
type options struct {
	opts  bench.Opts
	nopts bench.NativeOpts
	mopts bench.MetricsOpts
	topts bench.TracingOpts
	aopts bench.AbortOpts
	kopts bench.MapOpts
	dopts bench.DESOpts
	seed  int64
	csv   bool
	json  bool
}

// experiment is one registry entry: the dispatch name, the one-line
// description shown in usage, and the runner.
type experiment struct {
	name string
	desc string
	run  func(o options) error
}

// show renders a table honoring the output mode.
func show(o options, t *bench.Table) error {
	switch {
	case o.json:
		raw, err := t.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
	case o.csv:
		fmt.Print(t.CSV())
	default:
		fmt.Println(t)
	}
	return nil
}

// report is the common shape of the JSON-archived experiments.
type report interface {
	Table() *bench.Table
	JSON() ([]byte, error)
}

// showReport renders a BENCH_*.json-style report honoring the output mode.
func showReport(o options, rep report, err error) error {
	if err != nil {
		return err
	}
	if o.json {
		raw, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
		return nil
	}
	return show(o, rep.Table())
}

// experiments is the single source of truth for the experiment set: the
// usage text, the dispatch switch and the "all" order all derive from it.
var experiments = []experiment{
	{"table1", "Table 1: RMRs per passage, three failure scenarios, all locks", func(o options) error {
		for _, t := range bench.Table1(o.opts) {
			if err := show(o, t); err != nil {
				return err
			}
		}
		return nil
	}},
	{"table2", "Table 2: performance-measure classification", func(o options) error {
		return show(o, bench.Table2(o.opts))
	}},
	{"figure1", "Figure 1: sub-queue fragmentation after unsafe failures", func(o options) error {
		fmt.Println(bench.Figure1(o.seed))
		return nil
	}},
	{"figure2", "Figure 2: the semi-adaptive framework, with routing trace", func(o options) error {
		fmt.Println(bench.Figure2(o.seed))
		return nil
	}},
	{"figure3", "Figure 3: the recursive framework, with escalation trace", func(o options) error {
		fmt.Println(bench.Figure3(o.opts))
		return nil
	}},
	{"adaptivity", "Theorem 5.18: RMRs vs F with sqrt(F) fit (headline result)", func(o options) error {
		return show(o, bench.Adaptivity(o.opts))
	}},
	{"escalation", "Theorem 5.17: escalation depth vs failures", func(o options) error {
		return show(o, bench.Escalation(o.opts))
	}},
	{"batch", "Theorem 7.1: batch vs independent failures", func(o options) error {
		return show(o, bench.Batch(o.opts))
	}},
	{"resp", "Theorem 4.2: WR-Lock responsiveness", func(o options) error {
		return show(o, bench.Responsiveness(o.opts))
	}},
	{"components", "Theorems 4.7/5.6: O(1) component costs", func(o options) error {
		return show(o, bench.Components())
	}},
	{"scale", "failure-free RMRs vs n: the complexity curves of Table 1", func(o options) error {
		return show(o, bench.Scale(o.opts))
	}},
	{"ablation", "the price of each property, from plain MCS up", func(o options) error {
		return show(o, bench.Ablation(o.opts))
	}},
	{"reclaim", "Section 7.2: bounded space via reclamation", func(o options) error {
		return show(o, bench.Reclaim(o.opts))
	}},
	{"superpassage", "Section 7.3: super-passage cost under repeated self-crashes", func(o options) error {
		return show(o, bench.SuperPassage(o.opts))
	}},
	{"native", "wall-clock throughput of the sync/atomic backend, padded vs unpadded arena (BENCH_native.json)", func(o options) error {
		rep, err := bench.Native(o.nopts)
		return showReport(o, rep, err)
	}},
	{"metrics", "exact CC-model RMR and level distributions on the native backend, swept over workers and failures F (BENCH_metrics.json)", func(o options) error {
		rep, err := bench.PassageMetrics(o.mopts)
		return showReport(o, rep, err)
	}},
	{"tracing", "flight-recorder overhead A/B: absent vs disabled vs recording (BENCH_tracing.json; CI bounds off at 5%)", func(o options) error {
		rep, err := bench.Tracing(o.topts)
		return showReport(o, rep, err)
	}},
	{"abort", "abortable passages: failure-free and back-out RMRs at abort rates 0/1%/10% (BENCH_abort.json)", func(o options) error {
		rep, err := bench.AbortCost(o.aopts)
		return showReport(o, rep, err)
	}},
	{"map", "keyed lock manager (rme.Map): RMRs under hot-key, Zipf and churn regimes (BENCH_map.json)", func(o options) error {
		rep, err := bench.MapCost(o.kopts)
		return showReport(o, rep, err)
	}},
	{"des", "virtual-time discrete-event traffic: rate ramp to collapse, crash storms vs uniform, Zipf keyspaces, stragglers (BENCH_des.json)", func(o options) error {
		rep, err := bench.DESTraffic(o.dopts)
		return showReport(o, rep, err)
	}},
}

// experimentNames lists the registry in order, with "all" appended.
func experimentNames() []string {
	names := make([]string, 0, len(experiments)+1)
	for _, e := range experiments {
		names = append(names, e.name)
	}
	return append(names, "all")
}

// usageText renders the experiment list shown by -h and bad invocations.
func usageText() string {
	var b strings.Builder
	b.WriteString("usage: rmebench [flags] <experiment>\nexperiments:\n")
	for _, e := range experiments {
		fmt.Fprintf(&b, "  %-12s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(&b, "  %-12s %s\n", "all", "everything above, in order")
	b.WriteString("flags:\n")
	return b.String()
}

// run dispatches one experiment name (or "all") against the registry.
func run(name string, o options) error {
	if name == "all" {
		for _, e := range experiments {
			if err := e.run(o); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	for _, e := range experiments {
		if e.name == name {
			return e.run(o)
		}
	}
	return fmt.Errorf("unknown experiment %q (have: %s)", name, strings.Join(experimentNames(), " "))
}

func main() {
	var (
		n        = flag.Int("n", 16, "number of processes")
		requests = flag.Int("requests", 5, "satisfied requests per process")
		failures = flag.Int("failures", 0, "failure budget for the F-failures scenario (default n)")
		seeds    = flag.String("seeds", "1,2,3", "comma-separated seeds to average over")
		seed     = flag.Int64("seed", 21, "seed for single-run figures")
		csv      = flag.Bool("csv", false, "emit tables as CSV (figures stay textual)")
		jsonOut  = flag.Bool("json", false, "emit tables and reports as JSON")
		workers  = flag.Int("workers", 8, "native/metrics/des: max concurrent workers")
		passages = flag.Int("passages", 20000, "native: passages per measurement")
		reps     = flag.Int("reps", 3, "native: repetitions per measurement (best kept)")
		mpass    = flag.Int("mpassages", 5000, "metrics: passages per measurement")
		mfail    = flag.String("mfailures", "1,2,4,8,16,32", "metrics: comma-separated injected failure budgets F")
		arates   = flag.String("arates", "0,0.01,0.10", "abort: comma-separated deadline-attempt rates")
		mapkeys  = flag.Int("mapkeys", 64, "map: zipf-mode key-space size")
		zipfs    = flag.Float64("zipfs", 1.1, "map: zipf skew parameter s (> 1)")
		churnkey = flag.Int("churnkeys", 2048, "map: distinct keys in the churn mode")
		desreq   = flag.Int("desrequests", 60, "des: satisfied requests per process per run")
		desrates = flag.String("desrates", "", "des: comma-separated arrival-rate ramp (req/s per process; default 2k,10k,50k,200k,1M)")
		desseed  = flag.Int64("desseed", 1, "des: seed (fixed so BENCH_des.json is reproducible)")
		deskeys  = flag.Int("deskeys", 16, "des: zipf-regime keyspace size")
		descrash = flag.Int("descrashes", 24, "des: crash-regime failure budget")
		desabort = flag.Int64("desaborts", 0, "des: abort-regime deadline in virtual ns (default 30µs)")
		version  = flag.Bool("version", false, "print build info and exit")
	)
	flag.Usage = func() {
		fmt.Fprint(os.Stderr, usageText())
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("rmebench"))
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "rmebench: -csv and -json are mutually exclusive")
		os.Exit(2)
	}

	var seedList []int64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmebench: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		seedList = append(seedList, v)
	}
	var failList []int
	for _, s := range strings.Split(*mfail, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "rmebench: bad failure budget %q\n", s)
			os.Exit(2)
		}
		failList = append(failList, v)
	}
	var rateList []float64
	for _, s := range strings.Split(*arates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "rmebench: bad abort rate %q\n", s)
			os.Exit(2)
		}
		rateList = append(rateList, v)
	}
	var desRateList []float64
	if *desrates != "" {
		for _, s := range strings.Split(*desrates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "rmebench: bad des rate %q\n", s)
				os.Exit(2)
			}
			desRateList = append(desRateList, v)
		}
	}

	o := options{
		opts:  bench.Opts{N: *n, Requests: *requests, Failures: *failures, Seeds: seedList},
		nopts: bench.NativeOpts{MaxWorkers: *workers, Passages: *passages, Reps: *reps},
		mopts: bench.MetricsOpts{MaxWorkers: *workers, Passages: *mpass, Failures: failList},
		topts: bench.TracingOpts{MaxWorkers: *workers, Passages: *passages, Reps: *reps},
		aopts: bench.AbortOpts{Workers: *workers, Passages: *mpass, Rates: rateList},
		kopts: bench.MapOpts{Workers: *workers, Keys: *mapkeys, ZipfS: *zipfs, Passages: *mpass, ChurnKeys: *churnkey},
		dopts: bench.DESOpts{Workers: *workers, Requests: *desreq, Seed: *desseed,
			Rates: desRateList, Keys: *deskeys, CrashBudget: *descrash,
			AbortDeadlineNs: *desabort},
		seed: *seed,
		csv:  *csv,
		json: *jsonOut,
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintf(os.Stderr, "rmebench: %v\n", err)
		os.Exit(1)
	}
}

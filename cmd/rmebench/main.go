// Command rmebench regenerates every table and figure of Dhoked & Mittal,
// "An Adaptive Approach to Recoverable Mutual Exclusion" (PODC 2020), by
// measuring the implementations in this repository on the RMR-exact
// shared-memory simulator, and benchmarks the real sync/atomic backend.
//
// Usage:
//
//	rmebench [flags] <experiment>
//
// Experiments:
//
//	table1       Table 1: RMRs per passage, three failure scenarios, all locks
//	table2       Table 2: performance-measure classification
//	figure1      Figure 1: sub-queue fragmentation after unsafe failures
//	figure2      Figure 2: the semi-adaptive framework, with routing trace
//	figure3      Figure 3: the recursive framework, with escalation trace
//	adaptivity   Theorem 5.18: RMRs vs F with √F fit (headline result)
//	escalation   Theorem 5.17: escalation depth vs failures
//	batch        Theorem 7.1: batch vs independent failures
//	resp         Theorem 4.2: WR-Lock responsiveness
//	components   Theorems 4.7/5.6: O(1) component costs
//	scale        failure-free RMRs vs n: the complexity curves of Table 1
//	ablation     the price of each property, from plain MCS up
//	reclaim      Section 7.2: bounded space via reclamation
//	superpassage Section 7.3: super-passage cost under repeated self-crashes
//	native       wall-clock throughput of the sync/atomic backend,
//	             padded vs unpadded arena (the BENCH_native.json source)
//	metrics      exact CC-model RMR and level distributions per passage on
//	             the native backend, swept over workers at F=0 and over
//	             injected unsafe failures F (the BENCH_metrics.json source)
//	tracing      flight-recorder overhead A/B: no recorder vs present-but-
//	             disabled vs recording, median wall clock per passage
//	             (the BENCH_tracing.json source; CI bounds off at 5%)
//	abort        abortable passages: failure-free and back-out RMRs at
//	             abort rates 0/1%/10% via the deadline API
//	             (the BENCH_abort.json source)
//	map          keyed lock manager (rme.Map): per-passage RMRs under
//	             hot-key, Zipf and key-churn popularity regimes, plus
//	             key-lifecycle accounting (the BENCH_map.json source)
//	all          everything above, in order
//
// With -json, tables (and the native report) are emitted as JSON documents
// instead of text — the format archived as BENCH_*.json (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rme/internal/bench"
)

func main() {
	var (
		n        = flag.Int("n", 16, "number of processes")
		requests = flag.Int("requests", 5, "satisfied requests per process")
		failures = flag.Int("failures", 0, "failure budget for the F-failures scenario (default n)")
		seeds    = flag.String("seeds", "1,2,3", "comma-separated seeds to average over")
		seed     = flag.Int64("seed", 21, "seed for single-run figures")
		csv      = flag.Bool("csv", false, "emit tables as CSV (figures stay textual)")
		jsonOut  = flag.Bool("json", false, "emit tables and the native report as JSON")
		workers  = flag.Int("workers", 8, "native/metrics: max concurrent workers (swept 1,2,4,...)")
		passages = flag.Int("passages", 20000, "native: passages per measurement")
		reps     = flag.Int("reps", 3, "native: repetitions per measurement (best kept)")
		mpass    = flag.Int("mpassages", 5000, "metrics: passages per measurement")
		mfail    = flag.String("mfailures", "1,2,4,8,16,32", "metrics: comma-separated injected failure budgets F")
		arates   = flag.String("arates", "0,0.01,0.10", "abort: comma-separated deadline-attempt rates")
		mapkeys  = flag.Int("mapkeys", 64, "map: zipf-mode key-space size")
		zipfs    = flag.Float64("zipfs", 1.1, "map: zipf skew parameter s (> 1)")
		churnkey = flag.Int("churnkeys", 2048, "map: distinct keys in the churn mode")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rmebench [flags] <experiment>\nexperiments: table1 table2 figure1 figure2 figure3 adaptivity escalation batch resp components scale ablation reclaim superpassage native metrics tracing abort map all\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "rmebench: -csv and -json are mutually exclusive")
		os.Exit(2)
	}

	var seedList []int64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmebench: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		seedList = append(seedList, v)
	}
	var failList []int
	for _, s := range strings.Split(*mfail, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "rmebench: bad failure budget %q\n", s)
			os.Exit(2)
		}
		failList = append(failList, v)
	}
	opts := bench.Opts{N: *n, Requests: *requests, Failures: *failures, Seeds: seedList}
	nopts := bench.NativeOpts{MaxWorkers: *workers, Passages: *passages, Reps: *reps}
	mopts := bench.MetricsOpts{MaxWorkers: *workers, Passages: *mpass, Failures: failList}
	var rateList []float64
	for _, s := range strings.Split(*arates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "rmebench: bad abort rate %q\n", s)
			os.Exit(2)
		}
		rateList = append(rateList, v)
	}
	aopts := bench.AbortOpts{Workers: *workers, Passages: *mpass, Rates: rateList}
	topts := bench.TracingOpts{MaxWorkers: *workers, Passages: *passages, Reps: *reps}
	kopts := bench.MapOpts{Workers: *workers, Keys: *mapkeys, ZipfS: *zipfs, Passages: *mpass, ChurnKeys: *churnkey}

	if err := run(flag.Arg(0), opts, nopts, mopts, topts, aopts, kopts, *seed, *csv, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "rmebench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, opts bench.Opts, nopts bench.NativeOpts, mopts bench.MetricsOpts, topts bench.TracingOpts, aopts bench.AbortOpts, kopts bench.MapOpts, seed int64, csv, jsonOut bool) error {
	show := func(t *bench.Table) error {
		switch {
		case jsonOut:
			raw, err := t.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
		case csv:
			fmt.Print(t.CSV())
		default:
			fmt.Println(t)
		}
		return nil
	}
	switch exp {
	case "table1":
		for _, t := range bench.Table1(opts) {
			if err := show(t); err != nil {
				return err
			}
		}
		return nil
	case "table2":
		return show(bench.Table2(opts))
	case "figure1":
		fmt.Println(bench.Figure1(seed))
	case "figure2":
		fmt.Println(bench.Figure2(seed))
	case "figure3":
		fmt.Println(bench.Figure3(opts))
	case "adaptivity":
		return show(bench.Adaptivity(opts))
	case "escalation":
		return show(bench.Escalation(opts))
	case "batch":
		return show(bench.Batch(opts))
	case "resp":
		return show(bench.Responsiveness(opts))
	case "components":
		return show(bench.Components())
	case "scale":
		return show(bench.Scale(opts))
	case "ablation":
		return show(bench.Ablation(opts))
	case "reclaim":
		return show(bench.Reclaim(opts))
	case "superpassage":
		return show(bench.SuperPassage(opts))
	case "native":
		rep, err := bench.Native(nopts)
		if err != nil {
			return err
		}
		if jsonOut {
			raw, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
			return nil
		}
		return show(rep.Table())
	case "tracing":
		rep, err := bench.Tracing(topts)
		if err != nil {
			return err
		}
		if jsonOut {
			raw, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
			return nil
		}
		return show(rep.Table())
	case "metrics":
		rep, err := bench.PassageMetrics(mopts)
		if err != nil {
			return err
		}
		if jsonOut {
			raw, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
			return nil
		}
		return show(rep.Table())
	case "abort":
		rep, err := bench.AbortCost(aopts)
		if err != nil {
			return err
		}
		if jsonOut {
			raw, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
			return nil
		}
		return show(rep.Table())
	case "map":
		rep, err := bench.MapCost(kopts)
		if err != nil {
			return err
		}
		if jsonOut {
			raw, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
			return nil
		}
		return show(rep.Table())
	case "all":
		for _, e := range []string{"table1", "table2", "figure1", "figure2", "figure3",
			"adaptivity", "escalation", "batch", "resp", "components", "scale",
			"ablation", "reclaim", "superpassage", "native", "metrics", "tracing", "abort", "map"} {
			if err := run(e, opts, nopts, mopts, topts, aopts, kopts, seed, csv, jsonOut); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

package main

import (
	"os"
	"strings"
	"testing"
)

// TestUsageDerivedFromRegistry pins the anti-drift property: every
// registry experiment appears in the usage text with its description, and
// the usage text names nothing that is not in the registry.
func TestUsageDerivedFromRegistry(t *testing.T) {
	usage := usageText()
	for _, e := range experiments {
		if !strings.Contains(usage, e.name) {
			t.Errorf("usage missing experiment %q", e.name)
		}
		if !strings.Contains(usage, e.desc) {
			t.Errorf("usage missing description of %q", e.name)
		}
	}
	if !strings.Contains(usage, "all") {
		t.Error("usage missing the all pseudo-experiment")
	}
	// Every indented name in the usage body must resolve in the registry.
	for _, line := range strings.Split(usage, "\n") {
		if !strings.HasPrefix(line, "  ") {
			continue
		}
		name := strings.Fields(line)[0]
		if name == "all" {
			continue
		}
		found := false
		for _, e := range experiments {
			if e.name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("usage lists %q, not in the registry", name)
		}
	}
}

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.name] {
			t.Fatalf("duplicate experiment %q", e.name)
		}
		if e.name == "all" {
			t.Fatal("registry must not shadow the all pseudo-experiment")
		}
		seen[e.name] = true
	}
	names := experimentNames()
	if names[len(names)-1] != "all" {
		t.Fatalf("experimentNames ends with %q, want all", names[len(names)-1])
	}
	if len(names) != len(experiments)+1 {
		t.Fatalf("%d names for %d experiments", len(names), len(experiments))
	}
	// The new experiments of this growth stage must be registered.
	for _, want := range []string{"des", "metrics", "map", "abort"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run("no-such-experiment", options{})
	if err == nil || !strings.Contains(err.Error(), "no-such-experiment") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "des") {
		t.Fatalf("error does not list valid experiments: %v", err)
	}
}

// TestRunDES exercises the des experiment end to end at miniature scale,
// with output redirected away from the test log.
func TestRunDES(t *testing.T) {
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	o := options{json: true}
	o.dopts.Workers = 2
	o.dopts.Requests = 4
	o.dopts.Rates = []float64{5_000}
	o.dopts.Keys = 4
	o.dopts.CrashBudget = 2
	if err := run("des", o); err != nil {
		t.Fatal(err)
	}
}

// Command rmesim runs one configurable simulation of a recoverable lock on
// the RMR-exact shared-memory simulator and reports statistics and
// property-check results.
//
// Usage:
//
//	rmesim -lock ba-log -n 16 -model cc -requests 5 -unsafe 4 -v
//
// Abortable locks additionally accept abort injection: -aborts N delivers
// up to N aborts at random instruction boundaries, and -abortat places
// deterministic deliveries at exact (pid, instruction-index) boundaries:
//
//	rmesim -lock ba-log -aborts 3
//	rmesim -lock wr -abortat 1@14,2@20
//
// The available locks are listed with -list.
//
// With -repro, rmesim instead replays a recorded violation artifact
// (written by cmd/soak or cmd/rmesweep) bit-exactly through the serialized
// scheduler and re-derives the check verdict:
//
//	rmesim -repro repro-wr-CC-seed17.json [-timeline]
//
// It exits 0 when the replay reproduces the artifact's recorded property
// violation and 1 when the verdict diverges (the bug no longer reproduces,
// or a different property fails).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/repro"
	"rme/internal/sim"
	"rme/internal/trace"
	"rme/internal/workload"
)

func main() {
	var (
		lock     = flag.String("lock", "ba-log", "lock to simulate (see -list)")
		n        = flag.Int("n", 8, "number of processes")
		model    = flag.String("model", "cc", "memory model: cc or dsm")
		requests = flag.Int("requests", 5, "satisfied requests per process")
		seed     = flag.Int64("seed", 1, "scheduler seed")
		failures = flag.Int("failures", 0, "random failures to inject at instruction boundaries")
		unsafe   = flag.Int("unsafe", 0, "unsafe failures to inject immediately after sensitive FAS instructions")
		aborts   = flag.Int("aborts", 0, "random abort deliveries to inject at instruction boundaries")
		abortAt  = flag.String("abortat", "", "comma-separated deterministic abort placements pid@opindex")
		csops    = flag.Int("csops", 1, "critical-section length in instructions")
		verbose  = flag.Bool("v", false, "dump lifecycle events")
		timeline = flag.Bool("timeline", false, "render an ASCII timeline of the run")
		passages = flag.Bool("passages", false, "list every passage with its cost")
		list     = flag.Bool("list", false, "list available locks and exit")
		reproIn  = flag.String("repro", "", "replay a recorded violation artifact and re-check it")
	)
	flag.Parse()

	if *reproIn != "" {
		os.Exit(replayArtifact(*reproIn, *timeline))
	}

	if *list {
		for _, name := range workload.Names() {
			spec, _ := workload.Lookup(name)
			fmt.Printf("%-12s %s\n", name, spec.Paper)
		}
		return
	}

	spec, err := workload.Lookup(*lock)
	if err != nil {
		fatal(err)
	}
	var mdl memory.Model
	switch strings.ToLower(*model) {
	case "cc":
		mdl = memory.CC
	case "dsm":
		mdl = memory.DSM
	default:
		fatal(fmt.Errorf("unknown model %q (want cc or dsm)", *model))
	}

	var plan sim.PlanSeq
	if *failures > 0 {
		plan = append(plan, &sim.FailureBudget{Total: *failures, Rate: 0.01})
	}
	if *unsafe > 0 {
		plan = append(plan, &sim.UnsafeBudget{Total: *unsafe, Rate: 0.3,
			MaxPerProcess: (*unsafe + *n - 1) / *n})
	}
	if *aborts > 0 {
		plan = append(plan, &sim.RandomAborts{Rate: 0.02, MaxTotal: *aborts})
	}
	if *abortAt != "" {
		pts, err := parsePoints(*abortAt, *n)
		if err != nil {
			fatal(err)
		}
		plan = append(plan, &sim.AbortSet{Points: pts})
	}
	cfg := sim.Config{
		N:         *n,
		Model:     mdl,
		Requests:  *requests,
		Seed:      *seed,
		CSOps:     *csops,
		RecordOps: true,
		MaxSteps:  50_000_000,
	}
	if len(plan) > 0 {
		cfg.Plan = plan
	}

	r, err := sim.New(cfg, spec.New)
	if err != nil {
		fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		fatal(err)
	}

	if *verbose {
		for _, ev := range res.Events {
			if ev.Kind == sim.EvOp {
				continue
			}
			fmt.Printf("t=%-8d p%-3d %s\n", ev.Seq, ev.PID, ev.Kind)
		}
		fmt.Println()
	}
	if *timeline {
		fmt.Println(trace.TimelineLevels(res, 100, res.DeepestLevels()))
	}
	if *passages {
		fmt.Println(trace.PassageTable(res))
	}

	fmt.Printf("lock        %s (%s)\n", spec.Name, spec.Paper)
	fmt.Printf("config      n=%d model=%v requests=%d seed=%d\n", *n, mdl, *requests, *seed)
	fmt.Printf("steps       %d\n", res.Steps)
	fmt.Printf("crashes     %d\n", res.CrashCount())
	fmt.Printf("aborts      %d\n", res.AbortCount())
	fmt.Printf("arena       %d words\n", res.ArenaWords)
	fmt.Printf("max CS occupancy  %d\n", res.MaxCSOverlap)
	fmt.Printf("passage RMRs      %v\n", res.SummarizePassageRMRs(nil))
	fmt.Printf("failure-free RMRs %v\n", res.SummarizePassageRMRs(func(p sim.PassageStat) bool { return !p.Crashed }))
	fmt.Printf("request RMRs      %v\n", res.SummarizeRequestRMRs())
	if spec.SlowLabels != nil {
		fmt.Printf("max level reached %d of %d\n", check.MaxDepth(res, spec.SlowLabels(*n)), spec.Levels(*n))
	}
	levels := 1
	if spec.Levels != nil {
		levels = spec.Levels(*n)
	}
	fmt.Printf("metrics     %s\n", res.MetricsSnapshot(levels))

	var checkErr error
	switch spec.Strength {
	case workload.Strong:
		checkErr = check.Strong(res, 1<<20)
		fmt.Printf("properties (strong: ME, satisfaction, BCSR): %s\n", verdict(checkErr))
	case workload.Weak:
		checkErr = check.Weak(res)
		fmt.Printf("properties (weak: satisfaction, responsiveness): %s\n", verdict(checkErr))
	}
	if checkErr != nil {
		os.Exit(1)
	}
}

// parsePoints parses "pid@opindex,pid@opindex" into crash/abort points.
func parsePoints(arg string, n int) ([]sim.CrashPoint, error) {
	var pts []sim.CrashPoint
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var pid int
		var at int64
		if _, err := fmt.Sscanf(part, "%d@%d", &pid, &at); err != nil {
			return nil, fmt.Errorf("bad placement %q (want pid@opindex): %w", part, err)
		}
		if pid < 0 || pid >= n || at < 0 {
			return nil, fmt.Errorf("placement %q out of range for n=%d", part, n)
		}
		pts = append(pts, sim.CrashPoint{PID: pid, OpIndex: at})
	}
	return pts, nil
}

// replayArtifact replays a repro file and reports whether the recorded
// verdict reproduces. Returns the process exit code.
func replayArtifact(path string, timeline bool) int {
	a, err := repro.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmesim: %v\n", err)
		return 1
	}
	spec, err := workload.Lookup(a.Lock)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmesim: artifact lock: %v\n", err)
		return 1
	}
	rr, err := repro.Replay(a, spec.New)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmesim: replay: %v\n", err)
		return 1
	}
	fmt.Printf("artifact    %s\n", a)
	if a.Note != "" {
		fmt.Printf("note        %s\n", a.Note)
	}
	fmt.Printf("recorded    property=%s (%s)\n", a.Property, a.Violation)
	fmt.Printf("replayed    steps=%d crashes=%d\n", rr.Result.Steps, rr.Result.CrashCount())
	if timeline {
		fmt.Println(trace.TimelineLevels(rr.Result, 100, rr.Result.DeepestLevels()))
	}
	if rr.Result.CrashCount() > 0 {
		fmt.Print(trace.CrashTable(rr.Result))
	}
	if rr.Reproduced(a) {
		fmt.Printf("verdict     REPRODUCED — %v\n", rr.CheckErr)
		return 0
	}
	if rr.Property == "" {
		fmt.Printf("verdict     NOT REPRODUCED — replay satisfied every property (stale artifact, or the bug is fixed)\n")
	} else {
		fmt.Printf("verdict     DIVERGED — replay violated %q instead of %q: %v\n", rr.Property, a.Property, rr.CheckErr)
	}
	return 1
}

func verdict(err error) string {
	if err != nil {
		return "VIOLATED — " + err.Error()
	}
	return "ok"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rmesim: %v\n", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rme/internal/flight"
	"rme/internal/promexp"
	"rme/internal/regime"
)

// server owns one regime.Runner per regime. All runners are built at
// boot (stopped), so the control plane can start any of them on demand;
// building a runner allocates its arena but drives no traffic.
type server struct {
	started time.Time
	runners map[string]*regime.Runner
}

func newServer(workers int, outDir string) (*server, error) {
	s := &server{started: time.Now(), runners: map[string]*regime.Runner{}}
	for _, name := range regime.Names() {
		r, err := regime.New(name, workers, outDir)
		if err != nil {
			return nil, err
		}
		s.runners[name] = r
	}
	return s, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /workloads", s.workloads)
	mux.HandleFunc("POST /workloads/{name}/start", s.startWorkload)
	mux.HandleFunc("POST /workloads/{name}/stop", s.stopWorkload)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /metrics.json", s.metricsJSON)
	mux.HandleFunc("GET /debug/flight", s.debugFlight)
	mux.HandleFunc("GET /debug/flight/chrome", s.debugChrome)
	mux.HandleFunc("GET /debug/profile", s.debugProfile)
	return mux
}

// stopAll drains every running regime (the SIGTERM path).
func (s *server) stopAll() {
	for _, r := range s.runners {
		r.Stop()
	}
}

// names returns the regime names in display order (the order
// regime.Names declares, which every runner map iteration must follow
// for deterministic JSON).
func (s *server) names() []string {
	return regime.Names()
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	running := 0
	for _, r := range s.runners {
		if r.Running() {
			running++
		}
	}
	writeJSON(w, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.started).Nanoseconds(),
		"running":   running,
	})
}

func (s *server) workloads(w http.ResponseWriter, _ *http.Request) {
	var out []regime.Status
	for _, name := range s.names() {
		out = append(out, s.runners[name].Status())
	}
	writeJSON(w, out)
}

// runner resolves the {name} path component, writing a 404 with the
// valid names on miss.
func (s *server) runner(w http.ResponseWriter, r *http.Request) *regime.Runner {
	name := r.PathValue("name")
	if name == "" {
		name = r.URL.Query().Get("workload")
	}
	run, ok := s.runners[name]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown workload %q (have: %v)", name, s.names()),
			http.StatusNotFound)
		return nil
	}
	return run
}

func (s *server) startWorkload(w http.ResponseWriter, r *http.Request) {
	run := s.runner(w, r)
	if run == nil {
		return
	}
	run.Start()
	writeJSON(w, run.Status())
}

func (s *server) stopWorkload(w http.ResponseWriter, r *http.Request) {
	run := s.runner(w, r)
	if run == nil {
		return
	}
	run.Stop()
	writeJSON(w, run.Status())
}

// sources assembles the scrape inputs. Snapshots come from the same
// seqlock-consistent recorders the passage path writes, so a scrape
// performs no shared-memory operations of its own — the fast path costs
// exactly as many RMRs with a scraper attached as without.
func (s *server) sources() []promexp.Source {
	var out []promexp.Source
	for _, name := range s.names() {
		r := s.runners[name]
		src := promexp.Source{
			Workload: name,
			Running:  r.Running(),
			Workers:  r.Workers(),
			Snapshot: r.Snapshot(),
		}
		if st, ok := r.MapStats(); ok {
			src.Map = &st
		}
		if p, ok := r.FlightProfile(); ok && len(p.Phases) > 0 {
			src.Profile = &p
		}
		if name == "soak" {
			st := r.Status()
			src.Soak = &promexp.SoakStats{Runs: st.SoakRuns, Violations: st.SoakViolations}
		}
		out = append(out, src)
	}
	return out
}

func (s *server) metrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := promexp.Write(&buf, "rmeserver", s.sources()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *server) metricsJSON(w http.ResponseWriter, _ *http.Request) {
	out := map[string]regime.Status{}
	for _, name := range s.names() {
		out[name] = s.runners[name].Status()
	}
	writeJSON(w, out)
}

// recording resolves ?workload= to a live flight recording, applying the
// optional ?tail= trim.
func (s *server) recording(w http.ResponseWriter, r *http.Request) *flight.Recording {
	run := s.runner(w, r)
	if run == nil {
		return nil
	}
	rec, ok := run.FlightRecording()
	if !ok {
		http.Error(w, fmt.Sprintf("workload %q has no flight recorder", run.Name()),
			http.StatusNotFound)
		return nil
	}
	if t := r.URL.Query().Get("tail"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad tail %q", t), http.StatusBadRequest)
			return nil
		}
		rec = rec.Tail(n)
	}
	return rec
}

func (s *server) debugFlight(w http.ResponseWriter, r *http.Request) {
	rec := s.recording(w, r)
	if rec == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := rec.WriteTo(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) debugChrome(w http.ResponseWriter, r *http.Request) {
	rec := s.recording(w, r)
	if rec == nil {
		return
	}
	tr, err := flight.Chrome(rec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := tr.MarshalIndent()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *server) debugProfile(w http.ResponseWriter, r *http.Request) {
	run := s.runner(w, r)
	if run == nil {
		return
	}
	p, ok := run.FlightProfile()
	if !ok {
		http.Error(w, fmt.Sprintf("workload %q has no flight recorder", run.Name()),
			http.StatusNotFound)
		return
	}
	writeJSON(w, p)
}

// Command rmeserver is the live ops plane: a long-running HTTP service
// that drives configurable workload regimes (hot, Zipf-keyed, churn,
// deadline-abort, crash-injection, continuous soak — see internal/regime)
// against rme.Mutex and rme.Map, and exposes what the locks are doing:
//
//	GET  /healthz                   liveness + running-regime count
//	GET  /workloads                 regime status JSON
//	POST /workloads/{name}/start    start a regime's drivers
//	POST /workloads/{name}/stop     drain a regime's drivers
//	GET  /metrics                   Prometheus text exposition (promexp)
//	GET  /metrics.json              the same snapshots as JSON
//	GET  /debug/flight              flight-recorder dump (?workload=, ?tail=)
//	GET  /debug/flight/chrome       the dump as a Chrome/Perfetto trace
//	GET  /debug/profile             phase-latency profile (?workload=)
//
// Scrapes read the same seqlock-consistent recorders the passage path
// writes and add zero shared-memory operations to it; grafana/
// dashboard.json panels the exposition. On SIGTERM/SIGINT the server
// stops accepting requests, drains in-flight handlers, then stops every
// regime's workers.
//
// -checkformat lints a Prometheus exposition payload from stdin (the CI
// server-smoke job pipes a live scrape through it).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rme/internal/buildinfo"
	"rme/internal/promexp"
	"rme/internal/regime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmeserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:9190", "HTTP listen address")
	workers := fs.Int("workers", 4, "worker (process) count per regime")
	regimes := fs.String("regimes", "hot", "comma-separated regimes to start at boot (empty = none; see /workloads)")
	out := fs.String("out", ".", "directory for soak repro artifacts")
	version := fs.Bool("version", false, "print build info and exit")
	checkFormat := fs.Bool("checkformat", false, "lint a Prometheus exposition payload from stdin and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *version {
		fmt.Fprintln(stdout, buildinfo.String("rmeserver"))
		return 0
	}
	if *checkFormat {
		data, err := io.ReadAll(stdin)
		if err == nil {
			err = promexp.Lint(data)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rmeserver: checkformat: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "exposition OK")
		return 0
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(stderr, "rmeserver: %v\n", err)
		return 2
	}
	srv, err := newServer(*workers, *out)
	if err != nil {
		fmt.Fprintf(stderr, "rmeserver: %v\n", err)
		return 2
	}
	var boot []string
	for _, name := range strings.Split(*regimes, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := srv.runners[name]
		if !ok {
			fmt.Fprintf(stderr, "rmeserver: unknown regime %q (have: %v)\n", name, regime.Names())
			return 2
		}
		r.Start()
		boot = append(boot, name)
	}

	hs := &http.Server{Addr: *listen, Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(stderr, "rmeserver: %s listening on %s (workers=%d, regimes=%v)\n",
		buildinfo.String("rmeserver"), *listen, *workers, boot)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "rmeserver: %v\n", err)
			return 1
		}
		return 0
	case s := <-sig:
		fmt.Fprintf(stderr, "rmeserver: %v: draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "rmeserver: shutdown: %v\n", err)
		}
		srv.stopAll()
		fmt.Fprintln(stderr, "rmeserver: drained")
		return 0
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rme"
	"rme/internal/flight"
	"rme/internal/promexp"
	"rme/internal/regime"
)

func newTestServer(t *testing.T, workers int) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(workers, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() { ts.Close(); srv.stopAll() })
	return srv, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// waitFor polls the predicate until it holds or the deadline expires.
func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, 1)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var h struct {
		Status   string `json:"status"`
		UptimeNS int64  `json:"uptime_ns"`
		Running  int    `json:"running"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.UptimeNS <= 0 || h.Running != 0 {
		t.Fatalf("healthz payload: %+v", h)
	}
}

func TestWorkloadControlPlane(t *testing.T) {
	srv, ts := newTestServer(t, 2)

	code, body := get(t, ts.URL+"/workloads")
	if code != http.StatusOK {
		t.Fatalf("workloads: %d %s", code, body)
	}
	var list []regime.Status
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(regime.Names()) {
		t.Fatalf("%d workloads listed, want %d", len(list), len(regime.Names()))
	}
	for i, name := range regime.Names() {
		if list[i].Name != name || list[i].Running {
			t.Fatalf("row %d: %+v, want stopped %q", i, list[i], name)
		}
	}

	if code, body := post(t, ts.URL+"/workloads/hot/start"); code != http.StatusOK {
		t.Fatalf("start: %d %s", code, body)
	}
	waitFor(t, "hot passages", func() bool {
		return srv.runners["hot"].Snapshot().Passages > 10
	})
	if code, body := post(t, ts.URL+"/workloads/hot/stop"); code != http.StatusOK {
		t.Fatalf("stop: %d %s", code, body)
	}
	if srv.runners["hot"].Running() {
		t.Fatal("hot still running after stop")
	}

	if code, _ := post(t, ts.URL+"/workloads/bogus/start"); code != http.StatusNotFound {
		t.Fatalf("unknown workload start: %d, want 404", code)
	}
	// The control plane is POST-only.
	if code, _ := get(t, ts.URL+"/workloads/hot/start"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET start: %d, want 405", code)
	}
}

// scrapeValue extracts a single sample value from an exposition payload.
func scrapeValue(t *testing.T, body []byte, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("sample %q not in scrape", sample)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsAnchor is the zero-overhead regression: the hot regime at
// one worker is the uncontended failure-free anchor, so the scraped
// rme_rmr_median must exactly equal the median of a directly driven
// single-process rme.Mutex — if scraping (or the server plumbing) added
// even one shared-memory operation to the passage path, the distributions
// would diverge.
func TestMetricsAnchor(t *testing.T) {
	srv, ts := newTestServer(t, 1)
	if code, body := post(t, ts.URL+"/workloads/hot/start"); code != http.StatusOK {
		t.Fatalf("start: %d %s", code, body)
	}
	// Scrape concurrently with the workload so any scrape-path
	// interference would actually land on live passages.
	for i := 0; i < 5; i++ {
		if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK {
			t.Fatalf("scrape %d failed", i)
		}
	}
	waitFor(t, "hot passages", func() bool {
		return srv.runners["hot"].Snapshot().Passages >= 100
	})
	post(t, ts.URL+"/workloads/hot/stop")
	_, body := get(t, ts.URL+"/metrics")
	scraped := scrapeValue(t, body, `rme_rmr_median{workload="hot"}`)

	m, err := rme.New(1, rme.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Lock(0)
		m.Unlock(0)
	}
	snap, _ := m.MetricsSnapshot()
	direct := float64(snap.RMRHist.Quantile(0.5))
	if scraped != direct {
		t.Fatalf("scraped rmr_median %v != directly driven %v — the ops plane is perturbing the passage path",
			scraped, direct)
	}
}

// TestScrapeAddsNoOps: with every regime stopped, repeated scrapes must
// not move a single shared-memory-operation counter.
func TestScrapeAddsNoOps(t *testing.T) {
	srv, ts := newTestServer(t, 2)
	if code, _ := post(t, ts.URL+"/workloads/hot/start"); code != http.StatusOK {
		t.Fatal("start failed")
	}
	waitFor(t, "hot passages", func() bool {
		return srv.runners["hot"].Snapshot().Passages > 5
	})
	post(t, ts.URL+"/workloads/hot/stop")

	_, first := get(t, ts.URL+"/metrics")
	for i := 0; i < 3; i++ {
		get(t, ts.URL+"/metrics")
		get(t, ts.URL+"/metrics.json")
		get(t, ts.URL+"/debug/flight?workload=hot")
	}
	_, second := get(t, ts.URL+"/metrics")
	re := regexp.MustCompile(`(?m)^(rme_(?:ops|rmrs)_total\{[^}]*\}) (\S+)$`)
	firstVals := map[string]string{}
	for _, m := range re.FindAllSubmatch(first, -1) {
		firstVals[string(m[1])] = string(m[2])
	}
	if len(firstVals) == 0 {
		t.Fatal("no ops/rmrs samples in scrape")
	}
	for _, m := range re.FindAllSubmatch(second, -1) {
		if got, want := string(m[2]), firstVals[string(m[1])]; got != want {
			t.Fatalf("%s moved from %s to %s across idle scrapes", m[1], want, got)
		}
	}
}

func TestMetricsLintsAndCountersMonotone(t *testing.T) {
	srv, ts := newTestServer(t, 2)
	post(t, ts.URL+"/workloads/hot/start")
	post(t, ts.URL+"/workloads/churn/start")
	waitFor(t, "traffic", func() bool {
		return srv.runners["hot"].Snapshot().Passages > 5 &&
			srv.runners["churn"].Snapshot().Passages > 5
	})
	_, first := get(t, ts.URL+"/metrics")
	if err := promexp.Lint(first); err != nil {
		t.Fatalf("live scrape fails lint: %v", err)
	}
	waitFor(t, "more traffic", func() bool {
		return srv.runners["hot"].Snapshot().Passages > 50
	})
	_, second := get(t, ts.URL+"/metrics")
	if err := promexp.Lint(second); err != nil {
		t.Fatalf("second scrape fails lint: %v", err)
	}
	a := scrapeValue(t, first, `rme_passages_total{workload="hot"}`)
	b := scrapeValue(t, second, `rme_passages_total{workload="hot"}`)
	if b < a {
		t.Fatalf("rme_passages_total went backwards: %v then %v", a, b)
	}
	// Map families present for the churn workload.
	scrapeValue(t, second, `rme_map_keys{workload="churn"}`)
	if v := scrapeValue(t, second, `rme_workload_running{workload="hot"}`); v != 1 {
		t.Fatalf("hot not marked running: %v", v)
	}
}

func TestMetricsJSON(t *testing.T) {
	_, ts := newTestServer(t, 1)
	code, body := get(t, ts.URL+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("metrics.json: %d", code)
	}
	var m map[string]regime.Status
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	for _, name := range regime.Names() {
		st, ok := m[name]
		if !ok || st.Name != name {
			t.Fatalf("metrics.json missing %q: %s", name, body)
		}
	}
}

func TestDebugEndpoints(t *testing.T) {
	srv, ts := newTestServer(t, 2)
	post(t, ts.URL+"/workloads/hot/start")
	waitFor(t, "hot passages", func() bool {
		return srv.runners["hot"].Snapshot().Passages > 5
	})
	post(t, ts.URL+"/workloads/hot/stop")

	code, body := get(t, ts.URL+"/debug/flight?workload=hot")
	if code != http.StatusOK {
		t.Fatalf("flight: %d %s", code, body)
	}
	var rec flight.Recording
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("served recording invalid: %v", err)
	}
	if rec.Events() == 0 {
		t.Fatal("served recording is empty")
	}

	code, body = get(t, ts.URL+"/debug/flight?workload=hot&tail=1")
	if code != http.StatusOK {
		t.Fatalf("flight tail: %d", code)
	}
	var tailed flight.Recording
	if err := json.Unmarshal(body, &tailed); err != nil {
		t.Fatal(err)
	}
	for pid, evs := range tailed.Procs {
		if len(evs) > 1 {
			t.Fatalf("tail=1 left %d events for p%d", len(evs), pid)
		}
	}

	code, body = get(t, ts.URL+"/debug/flight/chrome?workload=hot")
	if code != http.StatusOK {
		t.Fatalf("chrome: %d", code)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	code, body = get(t, ts.URL+"/debug/profile?workload=hot")
	if code != http.StatusOK {
		t.Fatalf("profile: %d", code)
	}
	var p flight.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) == 0 {
		t.Fatal("profile has no phases")
	}

	if code, _ = get(t, ts.URL+"/debug/flight?workload=soak"); code != http.StatusNotFound {
		t.Fatalf("soak flight: %d, want 404 (no native recorder)", code)
	}
	if code, _ = get(t, ts.URL+"/debug/flight?workload=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown flight: %d, want 404", code)
	}
	if code, _ = get(t, ts.URL+"/debug/flight?workload=hot&tail=zero"); code != http.StatusBadRequest {
		t.Fatalf("bad tail: %d, want 400", code)
	}
}

func TestRunFlagModes(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("-version exited %d: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "rmeserver revision=") {
		t.Fatalf("-version output: %q", out.String())
	}

	srcs := []promexp.Source{{Workload: "hot"}}
	var payload bytes.Buffer
	if err := promexp.Write(&payload, "test", srcs); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-checkformat"}, bytes.NewReader(payload.Bytes()), &out, &errOut); code != 0 {
		t.Fatalf("-checkformat rejected valid payload: %s", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-checkformat"}, strings.NewReader("not a metric\n"), &out, &errOut); code != 1 {
		t.Fatal("-checkformat accepted garbage")
	}
	if !strings.Contains(errOut.String(), "checkformat") {
		t.Fatalf("checkformat error output: %q", errOut.String())
	}

	errOut.Reset()
	if code := run([]string{"-regimes", "bogus", "-listen", "127.0.0.1:0"},
		strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("unknown boot regime exited %d, want 2", code)
	}
	if code := run([]string{"-badflag"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatal("bad flag accepted")
	}
}

// TestBuildInfoInScrape: the rme_build_info gauge names the binary.
func TestBuildInfoInScrape(t *testing.T) {
	_, ts := newTestServer(t, 1)
	_, body := get(t, ts.URL+"/metrics")
	if !regexp.MustCompile(`(?m)^rme_build_info\{binary="rmeserver",`).Match(body) {
		t.Fatalf("no rme_build_info in scrape:\n%s", body[:min(len(body), 300)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

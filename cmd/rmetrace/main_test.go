package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/core"
	"rme/internal/flight"
	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/trace"
)

// writeDump produces a recording file the way cmd/soak's post-mortem path
// does: a simulated run with an injected crash, converted through
// trace.SimRecording and trimmed with Tail.
func writeDump(t *testing.T, dir string) string {
	t.Helper()
	r, err := sim.New(sim.Config{N: 3, Model: memory.CC, Requests: 2, Seed: 5,
		Plan: &sim.CrashAtOp{PID: 1, OpIndex: 4}, RecordOps: true},
		func(sp memory.Space, n int) sim.Lock {
			return core.NewWRLock(sp, n, "wr", nil)
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.SimRecording(res).Tail(64)
	path := filepath.Join(dir, "flight-dump.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunChromeFromPostMortemDump(t *testing.T) {
	dir := t.TempDir()
	dump := writeDump(t, dir)
	out := filepath.Join(dir, "trace.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-chrome", out, dump}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "chrome trace") {
		t.Fatalf("no confirmation on stdout: %q", stdout.String())
	}

	// Validate the written file against the Chrome trace-event schema:
	// a JSON object with a traceEvents array whose entries carry the
	// required fields for their phase type.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("traceEvents is empty")
	}
	spans, instants := 0, 0
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		switch ph {
		case "X":
			spans++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event %d has no dur: %v", i, ev)
			}
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("complete event %d has no ts: %v", i, ev)
			}
		case "i":
			instants++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("instant %d has no ts: %v", i, ev)
			}
		case "M":
			if args, ok := ev["args"].(map[string]any); !ok || args["name"] == nil {
				t.Fatalf("metadata %d has no args.name: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unexpected ph %q", i, ph)
		}
	}
	if spans == 0 {
		t.Error("no span events in the converted dump")
	}
	if instants == 0 {
		t.Error("no instant events despite an injected crash")
	}
}

func TestRunTimelineVocabulary(t *testing.T) {
	dir := t.TempDir()
	dump := writeDump(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-timeline", "-width", "80", dump}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	// The same symbol vocabulary as internal/trace's Timeline legend,
	// verbatim.
	if !strings.Contains(out, "· ncs  ━ passage  █ CS  ✖ crash  │ satisfied") {
		t.Fatalf("legend missing or different:\n%s", out)
	}
	for _, sym := range []string{"█", "│", "✖"} {
		if !strings.Contains(out, sym) {
			t.Fatalf("missing %q in timeline:\n%s", sym, out)
		}
	}
}

func TestRunDefaultsToTimeline(t *testing.T) {
	dir := t.TempDir()
	dump := writeDump(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{dump}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "flight timeline") {
		t.Fatalf("bare invocation did not render the timeline:\n%s", stdout.String())
	}
}

func TestRunSummaryAndTail(t *testing.T) {
	dir := t.TempDir()
	dump := writeDump(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-summary", "-tail", "2", dump}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, flight.RecordingSchema) {
		t.Fatalf("summary missing schema line:\n%s", out)
	}
	// Tail(2) keeps at most 2 events per process.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "p") && strings.Contains(line, "events") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "1" && fields[1] != "2") {
				t.Fatalf("tail not applied: %q", line)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"/nonexistent/flight.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing-file exit %d, want 1", code)
	}
	// A structurally invalid recording is rejected by Validate on read.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-timeline", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("invalid-recording exit %d, want 1; stderr: %s", code, stderr.String())
	}
}

// Command rmetrace renders dumped flight recordings (rme-flight/v1 JSON,
// written by Mutex.FlightRecording + WriteFile, or by cmd/soak as a
// post-mortem alongside a violation repro).
//
// Usage:
//
//	rmetrace -chrome trace.json flight.json   # Chrome/Perfetto trace
//	rmetrace -timeline flight.json            # ASCII timeline to stdout
//	rmetrace -summary flight.json             # per-process event counts
//
// The Chrome output loads in ui.perfetto.dev or chrome://tracing: each rme
// process is a thread whose passage, phase, and critical-section spans
// nest, with crash/recover/handoff instants on top. The ASCII timeline
// uses the identical symbol vocabulary as the simulator's rmesim
// -timeline chart. -tail N trims the recording to the last N events per
// process first.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rme/internal/flight"
	"rme/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// opts are the parsed command-line options, factored out of main so the
// conversion pipeline is testable end to end.
type opts struct {
	chrome   string
	timeline bool
	summary  bool
	width    int
	tail     int
	path     string
}

func parseArgs(args []string, stderr io.Writer) (opts, error) {
	var o opts
	fs := flag.NewFlagSet("rmetrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.chrome, "chrome", "", "write a Chrome trace.json (Perfetto-loadable) to this path")
	fs.BoolVar(&o.timeline, "timeline", false, "render the ASCII timeline to stdout")
	fs.BoolVar(&o.summary, "summary", false, "print per-process event counts")
	fs.IntVar(&o.width, "width", 100, "timeline width in columns")
	fs.IntVar(&o.tail, "tail", 0, "keep only the last N events per process (0 = all)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() != 1 {
		return o, fmt.Errorf("want exactly one recording file, got %d args", fs.NArg())
	}
	o.path = fs.Arg(0)
	if o.chrome == "" && !o.summary {
		// Default action: the timeline, so a bare invocation shows
		// something useful.
		o.timeline = true
	}
	return o, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	o, err := parseArgs(args, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "rmetrace: %v\n", err)
		return 2
	}
	rec, err := flight.ReadFile(o.path)
	if err != nil {
		fmt.Fprintf(stderr, "rmetrace: %v\n", err)
		return 1
	}
	rec = rec.Tail(o.tail)

	if o.chrome != "" {
		if err := writeChrome(rec, o.chrome); err != nil {
			fmt.Fprintf(stderr, "rmetrace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "chrome trace → %s (open in ui.perfetto.dev or chrome://tracing)\n", o.chrome)
	}
	if o.summary {
		printSummary(stdout, rec)
	}
	if o.timeline {
		fmt.Fprint(stdout, trace.FlightTimeline(rec, o.width))
	}
	return 0
}

// writeChrome converts the recording and writes the trace.json file.
func writeChrome(rec *flight.Recording, path string) error {
	tr, err := flight.Chrome(rec)
	if err != nil {
		return err
	}
	data, err := tr.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printSummary reports the recording header and per-process event counts
// by kind.
func printSummary(w io.Writer, rec *flight.Recording) {
	fmt.Fprintf(w, "recording   %s source=%s clock=%s n=%d\n",
		rec.Schema, rec.Source, rec.Clock, rec.N)
	if rec.Note != "" {
		fmt.Fprintf(w, "note        %s\n", rec.Note)
	}
	for pid, events := range rec.Procs {
		counts := map[flight.Kind]int{}
		for _, ev := range events {
			counts[ev.Kind]++
		}
		fmt.Fprintf(w, "p%-3d %4d events (%d dropped)", pid, len(events), rec.Dropped[pid])
		for k := flight.KindPassageBegin; k <= flight.KindHandoff; k++ {
			if counts[k] > 0 {
				fmt.Fprintf(w, "  %s=%d", k, counts[k])
			}
		}
		fmt.Fprintln(w)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rme/internal/check"
	"rme/internal/des"
	"rme/internal/regime"
	"rme/internal/trace"
)

// The -des mode soaks the virtual-time discrete-event simulator: the
// pool-backed lock recipes under crash storms, uniform crash schedules
// and Zipf-keyed traffic, across many seeds. Violations produce two
// artifacts in -out: a flight post-mortem of the lifecycle tail (the
// rme-flight/v1 format cmd/rmetrace renders) and a des-repro JSON holding
// the exact des.Config — the simulation is deterministic, so re-running
// that config reproduces the violation bit for bit.

// desLocks are the simulator specs matching the native lock recipes.
var desLocks = []string{"ba-pool", "ba-sublog-pool"}

// desCampaign parameterizes one DES soak; factored out of main so the
// check-and-artifact pipeline is testable.
type desCampaign struct {
	seeds    int
	n        int
	requests int
	outDir   string
	stdout   io.Writer
}

// desRepro is the repro artifact: the failing configuration plus what was
// observed. Re-running Config under des.Run reproduces the run exactly.
type desRepro struct {
	Schema    string     `json:"schema"` // "rme-des-repro/v1"
	Violation string     `json:"violation"`
	Config    des.Config `json:"config"`
}

// regimes returns the traffic regimes one seed cycles through.
func (c *desCampaign) regimes(lock string, seed int64) []struct {
	name string
	cfg  des.Config
} {
	base := des.Config{Lock: lock, N: c.n, Requests: c.requests, Seed: seed,
		Arrival: des.Arrival{Kind: des.Poisson, Rate: 100_000}}
	storm := base
	storm.Crashes = des.Crashes{Kind: des.Storm, Budget: 3 * c.n,
		StormGapNs: 300_000, StormSize: c.n / 2}
	uniform := base
	uniform.Crashes = des.Crashes{Kind: des.Uniform, Budget: 2 * c.n, MeanGapNs: 100_000}
	keyed := base
	keyed.Keys = 8
	keyed.Arrival = des.Arrival{Kind: des.Bursty, Rate: 400_000}
	keyed.Crashes = des.Crashes{Kind: des.Storm, Budget: 2 * c.n, StormGapNs: 400_000}
	return []struct {
		name string
		cfg  des.Config
	}{
		{"storm", storm},
		{"uniform", uniform},
		{"keyed-storm", keyed},
	}
}

// verify applies the DES soak checks to one finished run.
func (c *desCampaign) verify(cfg des.Config, res *des.Result) error {
	if cfg.Keys > 1 {
		// Global CS overlap is meaningless across keys; per-key mutual
		// exclusion is the invariant.
		if res.MaxKeyCSOverlap != 1 {
			return fmt.Errorf("per-key CS overlap %d, want 1", res.MaxKeyCSOverlap)
		}
	} else if err := check.Strong(res.Sim, 1<<20); err != nil {
		return err
	}
	s := res.Passage
	if !(s.P50Ns <= s.P90Ns && s.P90Ns <= s.P99Ns && s.P99Ns <= s.MaxNs) {
		return fmt.Errorf("passage percentiles not monotone: %+v", s)
	}
	if res.Crashes != res.CrashedPassages {
		return fmt.Errorf("%d crashes but %d crashed passages", res.Crashes, res.CrashedPassages)
	}
	if res.Passages == 0 || res.VirtualNs <= 0 {
		return fmt.Errorf("degenerate run: %d passages over %dns", res.Passages, res.VirtualNs)
	}
	total := 0
	for _, k := range res.PerKey {
		total += k.Passages
	}
	if cfg.Keys > 1 && total != res.Passages {
		return fmt.Errorf("per-key passages sum %d != %d", total, res.Passages)
	}
	return nil
}

// flightTail mirrors the shared campaign bound for des post-mortems.
const flightTail = regime.FlightTail

// artifacts writes the repro config and, when a result exists, the flight
// post-mortem of the violating run.
func (c *desCampaign) artifacts(regime string, cfg des.Config, res *des.Result, violation error) {
	repro := desRepro{Schema: "rme-des-repro/v1", Violation: violation.Error(), Config: cfg}
	blob, err := json.MarshalIndent(repro, "", "  ")
	if err == nil {
		name := fmt.Sprintf("des-repro-%s-%s-seed%d.json", cfg.Lock, regime, cfg.Seed)
		path := filepath.Join(c.outDir, name)
		if werr := os.WriteFile(path, blob, 0o644); werr != nil {
			fmt.Fprintf(c.stdout, "  des-repro: %v\n", werr)
		} else {
			fmt.Fprintf(c.stdout, "  des-repro config → %s\n", path)
		}
	}
	if res == nil {
		return
	}
	rec := trace.SimRecording(res.Sim).Tail(flightTail)
	rec.Note = fmt.Sprintf("des soak %s/%s seed=%d: %v", cfg.Lock, regime, cfg.Seed, violation)
	name := fmt.Sprintf("flight-des-%s-%s-seed%d.json", cfg.Lock, regime, cfg.Seed)
	path := filepath.Join(c.outDir, name)
	if werr := rec.WriteFile(path); werr != nil {
		fmt.Fprintf(c.stdout, "  flight: %v\n", werr)
	} else {
		fmt.Fprintf(c.stdout, "  flight recording → %s (render: rmetrace -timeline %s)\n", path, path)
	}
}

// run executes the DES campaign and returns (runs, violations).
func (c *desCampaign) run() (int, int) {
	runs, failures := 0, 0
	for _, lock := range desLocks {
		// One determinism probe per lock: the same config must hash the
		// same trace twice.
		probe := des.Config{Lock: lock, N: c.n, Requests: c.requests, Seed: 0,
			Crashes: des.Crashes{Kind: des.Storm, Budget: c.n}}
		a, errA := des.Run(probe)
		b, errB := des.Run(probe)
		runs += 2
		switch {
		case errA != nil || errB != nil:
			failures++
			fmt.Fprintf(c.stdout, "FAIL des %s determinism probe: %v / %v\n", lock, errA, errB)
			c.artifacts("determinism", probe, nil, fmt.Errorf("probe error: %v / %v", errA, errB))
		case a.TraceHash != b.TraceHash:
			failures++
			verr := fmt.Errorf("trace hash diverged: %016x vs %016x", a.TraceHash, b.TraceHash)
			fmt.Fprintf(c.stdout, "FAIL des %s determinism probe: %v\n", lock, verr)
			c.artifacts("determinism", probe, a, verr)
		}

		for seed := int64(0); seed < int64(c.seeds); seed++ {
			for _, reg := range c.regimes(lock, seed) {
				runs++
				res, err := des.Run(reg.cfg)
				var verr error
				if err != nil {
					verr = err
					res = nil
				} else {
					verr = c.verify(reg.cfg, res)
				}
				if verr == nil {
					continue
				}
				failures++
				fmt.Fprintf(c.stdout, "FAIL des %s/%s seed=%d: %v\n", lock, reg.name, seed, verr)
				c.artifacts(reg.name, reg.cfg, res, verr)
			}
		}
	}
	fmt.Fprintf(c.stdout, "des soak: %d runs, %d violations\n", runs, failures)
	return runs, failures
}

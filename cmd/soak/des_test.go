package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/des"
)

// TestDESCampaignClean runs a miniature DES soak over the real locks and
// expects zero violations and no artifacts.
func TestDESCampaignClean(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	c := &desCampaign{seeds: 1, n: 4, requests: 4, outDir: dir, stdout: &out}
	runs, violations := c.run()
	// Per lock: 2 determinism probes + seeds × 3 regimes.
	want := len(desLocks) * (2 + 1*3)
	if runs != want {
		t.Fatalf("%d runs, want %d; output:\n%s", runs, want, out.String())
	}
	if violations != 0 {
		t.Fatalf("%d violations; output:\n%s", violations, out.String())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 0 {
		t.Fatalf("clean campaign wrote artifacts: %v", files)
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Fatalf("missing summary:\n%s", out.String())
	}
}

// TestDESCampaignVerify exercises the checker against doctored results.
func TestDESCampaignVerify(t *testing.T) {
	c := &desCampaign{n: 4, requests: 2, stdout: &bytes.Buffer{}}
	cfg := des.Config{Lock: "ba-pool", N: 4, Requests: 2, Seed: 1}
	res, err := des.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if verr := c.verify(cfg, res); verr != nil {
		t.Fatalf("clean run flagged: %v", verr)
	}

	bad := *res
	bad.CrashedPassages = res.Crashes + 1
	if c.verify(cfg, &bad) == nil {
		t.Fatal("crash accounting mismatch not flagged")
	}

	bad = *res
	bad.Passage.P90Ns = bad.Passage.P99Ns + 1
	if c.verify(cfg, &bad) == nil {
		t.Fatal("non-monotone percentiles not flagged")
	}

	keyedCfg := cfg
	keyedCfg.Keys = 4
	bad = *res
	bad.MaxKeyCSOverlap = 2
	if c.verify(keyedCfg, &bad) == nil {
		t.Fatal("per-key CS overlap not flagged")
	}
}

// TestDESCampaignArtifacts checks a violation writes both the des-repro
// config (round-trippable into a runnable des.Config) and the flight
// post-mortem.
func TestDESCampaignArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	c := &desCampaign{n: 3, requests: 2, outDir: dir, stdout: &out}
	cfg := des.Config{Lock: "ba-pool", N: 3, Requests: 2, Seed: 9,
		Crashes: des.Crashes{Kind: des.Uniform, Budget: 2}}
	res, err := des.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.artifacts("uniform", cfg, res, errFixture)

	reproPath := filepath.Join(dir, "des-repro-ba-pool-uniform-seed9.json")
	blob, err := os.ReadFile(reproPath)
	if err != nil {
		t.Fatalf("missing repro artifact: %v\noutput:\n%s", err, out.String())
	}
	var repro desRepro
	if err := json.Unmarshal(blob, &repro); err != nil {
		t.Fatal(err)
	}
	if repro.Schema != "rme-des-repro/v1" || repro.Violation == "" {
		t.Fatalf("malformed repro: %+v", repro)
	}
	// The recorded config must reproduce the identical run.
	again, err := des.Run(repro.Config)
	if err != nil {
		t.Fatal(err)
	}
	if again.TraceHash != res.TraceHash {
		t.Fatalf("repro config diverged: %016x vs %016x", again.TraceHash, res.TraceHash)
	}

	if _, err := os.Stat(filepath.Join(dir, "flight-des-ba-pool-uniform-seed9.json")); err != nil {
		t.Fatalf("missing flight artifact: %v", err)
	}
}

// errFixture is a stand-in violation for the artifact test.
var errFixture = errString("fixture violation")

type errString string

func (e errString) Error() string { return string(e) }

// Command soak is a long-running randomized stress campaign: every
// recoverable lock, both memory models, combined random + unsafe failure
// adversaries, across many seeds. It prints only violations and a final
// summary; CI-sized versions of the same sweeps live in the test suite.
package main

import (
	"flag"
	"fmt"
	"os"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/workload"
)

func main() {
	seeds := flag.Int("seeds", 100, "seeds per configuration")
	n := flag.Int("n", 6, "processes")
	requests := flag.Int("requests", 3, "requests per process")
	flag.Parse()

	runs, failures := 0, 0
	for _, name := range workload.Names() {
		spec, err := workload.Lookup(name)
		if err != nil {
			panic(err)
		}
		if spec.Strength == workload.NonRecoverable {
			continue
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			for seed := int64(0); seed < int64(*seeds); seed++ {
				plan := sim.PlanSeq{
					&sim.RandomFailures{Rate: 0.008, MaxPerProcess: 3, DuringPassage: true},
					&sim.UnsafeBudget{Total: 3, Rate: 0.4, MaxPerProcess: 1},
				}
				r, err := sim.New(sim.Config{N: *n, Model: model, Requests: *requests,
					Seed: seed, Plan: plan, CSOps: 3, MaxSteps: 30_000_000}, spec.New)
				if err != nil {
					panic(err)
				}
				res, err := r.Run()
				runs++
				if err != nil {
					failures++
					fmt.Printf("FAIL %s/%v seed=%d: %v\n", name, model, seed, err)
					continue
				}
				var cerr error
				switch spec.Strength {
				case workload.Strong:
					cerr = check.Strong(res, 1<<20)
				case workload.Weak:
					cerr = check.Weak(res)
				}
				if cerr != nil {
					failures++
					fmt.Printf("FAIL %s/%v seed=%d (%d crashes): %v\n", name, model, seed, res.CrashCount(), cerr)
				}
			}
		}
	}
	fmt.Printf("soak: %d runs, %d violations\n", runs, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// Command soak is a long-running randomized stress campaign: every
// recoverable lock, both memory models, combined random + unsafe failure
// adversaries, across many seeds. It prints only violations and a final
// summary; CI-sized versions of the same sweeps live in the test suite.
//
// Every violation is captured as a deterministic repro artifact: the
// failing configuration is re-run under a recording scheduler, shrunk by
// delta debugging (internal/repro), and written to -out as a JSON file that
// cmd/rmesim -repro replays bit-exactly. A violating campaign exits
// non-zero.
//
// With -timeout, a wall-clock watchdog bounds the whole campaign: if it
// has not finished in time (a livelocked lock, a starved scheduler), the
// watchdog writes a flight-recorder post-mortem of the run in progress —
// the last lifecycle events per process, renderable with cmd/rmetrace —
// and exits non-zero.
//
// With -des, the campaign instead soaks the virtual-time discrete-event
// simulator (internal/des): pool-backed lock recipes under crash storms,
// uniform crash schedules and Zipf-keyed bursty traffic, plus a
// determinism probe per lock. Violations write a flight post-mortem and a
// des-repro config JSON (deterministic — re-running the config reproduces
// the violation exactly) and the campaign exits non-zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/metrics"
	"rme/internal/repro"
	"rme/internal/sim"
	"rme/internal/trace"
	"rme/internal/workload"
)

// flightTail bounds the post-mortem flight dump to the last N events per
// process — the window around the violation, not the whole campaign.
const flightTail = 256

// campaign parameterizes one soak run; factored out of main so the
// end-to-end repro pipeline is testable with fixture locks.
type campaign struct {
	seeds    int
	n        int
	requests int
	outDir   string
	specs    []workload.Spec
	stdout   io.Writer
	// watch, if non-nil, shadows every run with a rolling event tail so a
	// wall-clock watchdog can write a post-mortem of a stuck run.
	watch *watchdog
}

// watchdog keeps a bounded tail of the lifecycle events of the run in
// progress, updated synchronously from the scheduler via Config.OnEvent.
// On timeout it converts the tail into a flight recording — the same
// post-mortem format the violation path dumps — without needing the stuck
// run to return a Result.
type watchdog struct {
	mu    sync.Mutex
	lock  string
	model memory.Model
	seed  int64
	n     int
	tail  []sim.Event
}

func (w *watchdog) begin(lock string, model memory.Model, seed int64, n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lock, w.model, w.seed, w.n = lock, model, seed, n
	w.tail = w.tail[:0]
}

func (w *watchdog) observe(ev sim.Event, _ *memory.Arena) {
	if ev.Kind == sim.EvOp {
		return // lifecycle tail only; op streams are unbounded
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	limit := flightTail * w.n
	if len(w.tail) >= limit {
		copy(w.tail, w.tail[len(w.tail)-limit/2:])
		w.tail = w.tail[:limit/2]
	}
	w.tail = append(w.tail, ev)
}

// postMortem writes the current tail as a flight recording and returns
// the path plus a description of the interrupted run.
func (w *watchdog) postMortem(outDir string) (string, string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	desc := fmt.Sprintf("%s/%v seed=%d", w.lock, w.model, w.seed)
	res := &sim.Result{Config: sim.Config{N: w.n},
		Events: append([]sim.Event{}, w.tail...)}
	rec := trace.SimRecording(res).Tail(flightTail)
	rec.Note = fmt.Sprintf("soak watchdog timeout during %s", desc)
	name := fmt.Sprintf("flight-watchdog-%s-%v-seed%d.json", w.lock, w.model, w.seed)
	path := filepath.Join(outDir, name)
	if err := rec.WriteFile(path); err != nil {
		return "", desc, err
	}
	return path, desc, nil
}

// plan builds the per-run adversary. Each run needs a fresh, identical
// plan: the plans are stateful and consume the run's random stream.
func (c *campaign) plan() sim.FailurePlan {
	return sim.PlanSeq{
		&sim.RandomFailures{Rate: 0.008, MaxPerProcess: 3, DuringPassage: true},
		&sim.UnsafeBudget{Total: 3, Rate: 0.4, MaxPerProcess: 1},
		&sim.RandomAborts{Rate: 0.004, MaxPerProcess: 2},
	}
}

func (c *campaign) config(model memory.Model, seed int64) sim.Config {
	cfg := sim.Config{N: c.n, Model: model, Requests: c.requests,
		Seed: seed, Plan: c.plan(), CSOps: 3, MaxSteps: 30_000_000}
	if c.watch != nil {
		cfg.OnEvent = c.watch.observe
	}
	return cfg
}

func strengthName(s workload.Strength) string {
	if s == workload.Weak {
		return repro.StrengthWeak
	}
	return repro.StrengthStrong
}

// report captures a violation as a shrunk, replayable artifact and returns
// the file it was written to.
func (c *campaign) report(spec workload.Spec, model memory.Model, seed int64, observed error) (string, error) {
	art, _, err := repro.Record(repro.RunSpec{
		Lock:       spec.Name,
		Strength:   strengthName(spec.Strength),
		BCSRMaxOps: 1 << 20,
		Config:     c.config(model, seed),
		Note:       fmt.Sprintf("soak %s/%v seed=%d: %v", spec.Name, model, seed, observed),
	}, spec.New)
	if err != nil {
		return "", fmt.Errorf("recording repro: %w", err)
	}
	if art.Property == "" {
		return "", fmt.Errorf("violation did not reproduce under the recording scheduler (non-deterministic plan?)")
	}
	art = repro.Shrink(art, spec.New)
	name := fmt.Sprintf("repro-%s-%v-seed%d.json", spec.Name, model, seed)
	path := filepath.Join(c.outDir, name)
	if err := art.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// dumpFlight writes a post-mortem flight recording of the violating run —
// the last flightTail lifecycle events per process in the rme-flight/v1
// interchange format, so cmd/rmetrace can render the window around the
// violation as a Chrome trace or ASCII timeline.
func (c *campaign) dumpFlight(spec workload.Spec, model memory.Model, seed int64,
	res *sim.Result, observed error) (string, error) {
	rec := trace.SimRecording(res).Tail(flightTail)
	rec.Note = fmt.Sprintf("soak %s/%v seed=%d: %v", spec.Name, model, seed, observed)
	name := fmt.Sprintf("flight-%s-%v-seed%d.json", spec.Name, model, seed)
	path := filepath.Join(c.outDir, name)
	if err := rec.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// run executes the campaign and returns (runs, violations).
func (c *campaign) run() (int, int) {
	runs, failures := 0, 0
	agg := map[string]metrics.Snapshot{}
	var order []string
	for _, spec := range c.specs {
		if spec.Strength == workload.NonRecoverable {
			continue
		}
		order = append(order, spec.Name)
		levels := 1
		if spec.Levels != nil {
			levels = spec.Levels(c.n)
		}
		for _, model := range []memory.Model{memory.CC, memory.DSM} {
			for seed := int64(0); seed < int64(c.seeds); seed++ {
				if c.watch != nil {
					c.watch.begin(spec.Name, model, seed, c.n)
				}
				r, err := sim.New(c.config(model, seed), spec.New)
				if err != nil {
					panic(err)
				}
				res, err := r.Run()
				runs++
				if err == nil {
					agg[spec.Name] = agg[spec.Name].Merge(res.MetricsSnapshot(levels))
				}
				var cerr error
				switch {
				case err != nil:
					cerr = &check.Violation{Property: check.PropStarvation, Err: err}
				case spec.Strength == workload.Strong:
					cerr = check.Strong(res, 1<<20)
				default:
					cerr = check.Weak(res)
				}
				if cerr == nil {
					continue
				}
				failures++
				fmt.Fprintf(c.stdout, "FAIL %s/%v seed=%d (%d crashes, %d aborts): %v\n",
					spec.Name, model, seed, res.CrashCount(), res.AbortCount(), cerr)
				if fp, ferr := c.dumpFlight(spec, model, seed, res, cerr); ferr != nil {
					fmt.Fprintf(c.stdout, "  flight: %v\n", ferr)
				} else {
					fmt.Fprintf(c.stdout, "  flight recording → %s (render: rmetrace -timeline %s)\n", fp, fp)
				}
				path, rerr := c.report(spec, model, seed, cerr)
				if rerr != nil {
					fmt.Fprintf(c.stdout, "  repro: %v\n", rerr)
					continue
				}
				fmt.Fprintf(c.stdout, "  repro written to %s (replay: rmesim -repro %s)\n", path, path)
			}
		}
	}
	fmt.Fprintln(c.stdout, "metrics (aggregated over models and seeds):")
	for _, name := range order {
		fmt.Fprintf(c.stdout, "  %-12s %s\n", name, agg[name])
	}
	fmt.Fprintf(c.stdout, "soak: %d runs, %d violations\n", runs, failures)
	return runs, failures
}

func main() {
	seeds := flag.Int("seeds", 100, "seeds per configuration")
	n := flag.Int("n", 6, "processes")
	requests := flag.Int("requests", 3, "requests per process")
	out := flag.String("out", ".", "directory for shrunk repro artifacts")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog for the whole campaign (0 = off)")
	desMode := flag.Bool("des", false, "soak the virtual-time discrete-event simulator (crash storms, keyed traffic) instead of the lockstep campaign")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(2)
	}
	if *desMode {
		dc := &desCampaign{seeds: *seeds, n: *n, requests: *requests,
			outDir: *out, stdout: os.Stdout}
		if _, failures := dc.run(); failures > 0 {
			os.Exit(1)
		}
		return
	}
	var specs []workload.Spec
	for _, name := range workload.Names() {
		spec, err := workload.Lookup(name)
		if err != nil {
			panic(err)
		}
		specs = append(specs, spec)
	}
	c := &campaign{seeds: *seeds, n: *n, requests: *requests,
		outDir: *out, specs: specs, stdout: os.Stdout}

	if *timeout <= 0 {
		if _, failures := c.run(); failures > 0 {
			os.Exit(1)
		}
		return
	}

	c.watch = &watchdog{}
	done := make(chan int, 1)
	go func() {
		_, failures := c.run()
		done <- failures
	}()
	select {
	case failures := <-done:
		if failures > 0 {
			os.Exit(1)
		}
	case <-time.After(*timeout):
		path, desc, err := c.watch.postMortem(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: watchdog timeout after %v during %s; post-mortem failed: %v\n",
				*timeout, desc, err)
		} else {
			fmt.Fprintf(os.Stderr, "soak: watchdog timeout after %v during %s; post-mortem → %s (render: rmetrace -timeline %s)\n",
				*timeout, desc, path, path)
		}
		os.Exit(3)
	}
}

// Command soak is a long-running randomized stress campaign: every
// recoverable lock, both memory models, combined random + unsafe failure
// adversaries, across many seeds. It prints only violations and a final
// summary; CI-sized versions of the same sweeps live in the test suite.
//
// Every violation is captured as a deterministic repro artifact: the
// failing configuration is re-run under a recording scheduler, shrunk by
// delta debugging (internal/repro), and written to -out as a JSON file that
// cmd/rmesim -repro replays bit-exactly. A violating campaign exits
// non-zero.
//
// With -timeout, a wall-clock watchdog bounds the whole campaign: if it
// has not finished in time (a livelocked lock, a starved scheduler), the
// watchdog writes a flight-recorder post-mortem of the run in progress —
// the last lifecycle events per process, renderable with cmd/rmetrace —
// and exits non-zero.
//
// With -des, the campaign instead soaks the virtual-time discrete-event
// simulator (internal/des): pool-backed lock recipes under crash storms,
// uniform crash schedules and Zipf-keyed bursty traffic, plus a
// determinism probe per lock. Violations write a flight post-mortem and a
// des-repro config JSON (deterministic — re-running the config reproduces
// the violation exactly) and the campaign exits non-zero.
//
// The campaign machinery itself (the adversary plan, the repro pipeline,
// the watchdog) lives in internal/regime, shared with cmd/rmeserver's
// continuous soak regime.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rme/internal/buildinfo"
	"rme/internal/regime"
	"rme/internal/workload"
)

func main() {
	seeds := flag.Int("seeds", 100, "seeds per configuration")
	n := flag.Int("n", 6, "processes")
	requests := flag.Int("requests", 3, "requests per process")
	out := flag.String("out", ".", "directory for shrunk repro artifacts")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog for the whole campaign (0 = off)")
	desMode := flag.Bool("des", false, "soak the virtual-time discrete-event simulator (crash storms, keyed traffic) instead of the lockstep campaign")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("soak"))
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(2)
	}
	if *desMode {
		dc := &desCampaign{seeds: *seeds, n: *n, requests: *requests,
			outDir: *out, stdout: os.Stdout}
		if _, failures := dc.run(); failures > 0 {
			os.Exit(1)
		}
		return
	}
	var specs []workload.Spec
	for _, name := range workload.Names() {
		spec, err := workload.Lookup(name)
		if err != nil {
			panic(err)
		}
		specs = append(specs, spec)
	}
	c := &regime.Campaign{Seeds: *seeds, N: *n, Requests: *requests,
		OutDir: *out, Specs: specs, Stdout: os.Stdout}

	if *timeout <= 0 {
		if _, failures := c.Run(); failures > 0 {
			os.Exit(1)
		}
		return
	}

	c.Watch = &regime.Watchdog{}
	done := make(chan int, 1)
	go func() {
		_, failures := c.Run()
		done <- failures
	}()
	select {
	case failures := <-done:
		if failures > 0 {
			os.Exit(1)
		}
	case <-time.After(*timeout):
		path, desc, err := c.Watch.PostMortem(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: watchdog timeout after %v during %s; post-mortem failed: %v\n",
				*timeout, desc, err)
		} else {
			fmt.Fprintf(os.Stderr, "soak: watchdog timeout after %v during %s; post-mortem → %s (render: rmetrace -timeline %s)\n",
				*timeout, desc, path, path)
		}
		os.Exit(3)
	}
}

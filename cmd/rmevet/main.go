// Command rmevet mechanically enforces the shared-memory discipline the
// RME algorithms (Dhoked & Mittal, PODC 2020) depend on:
//
//   - portdiscipline: algorithm packages touch shared memory only
//     through memory.Port — no sync/atomic, unsafe, goroutines,
//     channels, or package-level mutable state;
//   - sensitive: every FAS/CAS carries an rme:sensitive or
//     rme:nonsensitive(<why>) marker, and each file's
//     rme:sensitive-instructions inventory matches (WR-Lock: exactly
//     one, the FAS on tail — Definition 3.3);
//   - spinloop: busy-wait loops re-read through the Port and contain a
//     step gate (Port.Pause);
//   - persistfield: persistent-state structs hold memory.Addr words,
//     never raw Go pointers, maps, or channels that vanish on crash;
//   - flightemit: flight-recorder emit calls may not appear between a
//     sensitive FAS and its persisting write — recording must not widen
//     the crash window (Definition 3.3);
//   - persistorder: on every control-flow path, a sensitive RMW's result
//     reaches a persisting Port.Write before any return or further
//     sensitive instruction (backward must-analysis over the CFG);
//   - portescape: port handles stay passage-local — never stored in
//     globals or heap-reachable memory, sent on channels, or captured by
//     returned closures (forward taint analysis over the CFG);
//   - spinrmr: every port-governed spin loop either re-reads cheaply
//     (cached read + Pause) or carries an rme:rmw-loop(<why>) marker
//     certifying its per-retry RMW/Write cost is bounded.
//
// The driver additionally audits rme:allow markers: one that suppresses
// no diagnostic is itself reported (as "allowaudit"), so waivers cannot
// outlive the findings they waived.
//
// Run it standalone:
//
//	go run rme/cmd/rmevet ./...
//	go run rme/cmd/rmevet -sarif ./... > rmevet.sarif
//
// or as a vet tool:
//
//	go build -o rmevet rme/cmd/rmevet
//	go vet -vettool=./rmevet ./...
package main

import (
	"rme/internal/analysis"
	"rme/internal/analysis/driver"
	"rme/internal/analysis/passes/flightemit"
	"rme/internal/analysis/passes/persistfield"
	"rme/internal/analysis/passes/persistorder"
	"rme/internal/analysis/passes/portdiscipline"
	"rme/internal/analysis/passes/portescape"
	"rme/internal/analysis/passes/sensitive"
	"rme/internal/analysis/passes/spinloop"
	"rme/internal/analysis/passes/spinrmr"
)

// suite is the full analyzer set, in reporting order: the syntactic
// passes first, then the three flow-sensitive passes built on the
// CFG + dataflow engine.
var suite = []*analysis.Analyzer{
	portdiscipline.Analyzer,
	sensitive.Analyzer,
	spinloop.Analyzer,
	persistfield.Analyzer,
	flightemit.Analyzer,
	persistorder.Analyzer,
	portescape.Analyzer,
	spinrmr.Analyzer,
}

func main() {
	driver.Main("rmevet", suite...)
}

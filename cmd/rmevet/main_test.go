package main

import "testing"

// TestSuiteRegistration pins the analyzer set: dropping a pass from the
// suite would silently stop enforcing one of the eight invariants.
func TestSuiteRegistration(t *testing.T) {
	want := []string{"portdiscipline", "sensitive", "spinloop", "persistfield", "flightemit", "persistorder", "portescape", "spinrmr"}
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, name := range want {
		a := suite[i]
		if a == nil {
			t.Fatalf("suite[%d] is nil", i)
		}
		if a.Name != name {
			t.Errorf("suite[%d].Name = %q, want %q", i, a.Name, name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

// Command rmesweep runs the deterministic crash-placement sweep: a first
// instrumented pass records every process's instruction stream, then one
// run per enumerated placement — every (pid, instruction-index) boundary up
// to a horizon, the rendezvous immediately after each RMW (the sensitive
// window of Definition 3.3/3.4), and optionally pairs of after-RMW crashes
// for the F ≥ 2 escalation paths — re-executes the workload with exactly
// that crash set and re-checks the paper's properties. With -aborts it
// also sweeps abort placements: an abort delivery at every boundary, an
// abort after each RMW, and abort×crash pairs that crash the process while
// it is running the back-out protocol itself.
//
// The sweep is the mechanical proof-obligation runner for each recoverable
// layer: where cmd/soak samples adversaries from a seed, rmesweep visits
// every single-crash placement exhaustively. Violations are shrunk and
// written as repro artifacts that cmd/rmesim -repro replays bit-exactly.
//
// Usage:
//
//	rmesweep -locks wr,sa,ba-log -n 4 -model both -requests 2 -pairs -aborts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/repro"
	"rme/internal/sim"
	"rme/internal/workload"
)

func main() {
	var (
		locks         = flag.String("locks", "wr,sa,ba-log", "comma-separated locks to sweep (see rmesim -list)")
		n             = flag.Int("n", 4, "number of processes")
		model         = flag.String("model", "both", "memory model: cc, dsm or both")
		requests      = flag.Int("requests", 2, "satisfied requests per process")
		seed          = flag.Int64("seed", 1, "scheduler seed for every placement run")
		csops         = flag.Int("csops", 2, "critical-section length in instructions")
		horizon       = flag.Int64("horizon", 0, "per-process instruction horizon for boundary placements (0 = full stream)")
		pairs         = flag.Bool("pairs", false, "add two-crash placements for the F≥2 escalation paths")
		maxPairs      = flag.Int("maxpairs", 64, "cap on two-crash placements")
		aborts        = flag.Bool("aborts", false, "add abort placements (every boundary, after each RMW, abort×crash pairs)")
		maxAbortPairs = flag.Int("maxabortpairs", 64, "cap on abort×crash pair placements")
		out           = flag.String("out", ".", "directory for shrunk repro artifacts")
		verbose       = flag.Bool("v", false, "print per-placement progress")
	)
	flag.Parse()

	var models []memory.Model
	switch strings.ToLower(*model) {
	case "cc":
		models = []memory.Model{memory.CC}
	case "dsm":
		models = []memory.Model{memory.DSM}
	case "both":
		models = []memory.Model{memory.CC, memory.DSM}
	default:
		fatal(fmt.Errorf("unknown model %q (want cc, dsm or both)", *model))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	totalPlacements, totalViolations := 0, 0
	for _, name := range strings.Split(*locks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec, err := workload.Lookup(name)
		if err != nil {
			fatal(err)
		}
		if spec.Strength == workload.NonRecoverable {
			fmt.Printf("%-10s skipped (non-recoverable ablation baseline)\n", name)
			continue
		}
		for _, mdl := range models {
			placements, violations, err := sweepOne(spec, mdl, sweepOpts{
				n: *n, requests: *requests, seed: *seed, csops: *csops,
				horizon: *horizon, pairs: *pairs, maxPairs: *maxPairs,
				aborts: *aborts, maxAbortPairs: *maxAbortPairs,
				outDir: *out, verbose: *verbose,
			})
			if err != nil {
				fatal(err)
			}
			totalPlacements += placements
			totalViolations += violations
		}
	}
	fmt.Printf("rmesweep: %d placements, %d violations\n", totalPlacements, totalViolations)
	if totalViolations > 0 {
		os.Exit(1)
	}
}

type sweepOpts struct {
	n, requests, csops int
	seed               int64
	horizon            int64
	pairs              bool
	maxPairs           int
	aborts             bool
	maxAbortPairs      int
	outDir             string
	verbose            bool
}

func sweepOne(spec workload.Spec, mdl memory.Model, o sweepOpts) (placements, violations int, err error) {
	aborts := o.aborts
	if aborts {
		// Abort placements only make sense for locks implementing the
		// back-out protocol; the runner would ignore them anyway, so skip
		// the redundant placements up front.
		probe := spec.New(memory.NewArena(mdl, o.n), o.n)
		if _, ok := probe.(sim.Aborter); !ok {
			fmt.Printf("%-10s %v: abort placements skipped (lock is not abortable)\n", spec.Name, mdl)
			aborts = false
		}
	}
	sc := sim.SweepConfig{
		Config: sim.Config{N: o.n, Model: mdl, Requests: o.requests,
			Seed: o.seed, CSOps: o.csops, MaxSteps: 10_000_000},
		Horizon:       o.horizon,
		Pairs:         o.pairs,
		MaxPairs:      o.maxPairs,
		Aborts:        aborts,
		MaxAbortPairs: o.maxAbortPairs,
	}
	plan, err := sim.PlanSweep(sc, spec.New)
	if err != nil {
		return 0, 0, fmt.Errorf("%s/%v: %w", spec.Name, mdl, err)
	}
	for i, pl := range plan.Placements {
		res, runErr := plan.Run(i, spec.New)
		var cerr error
		switch {
		case runErr != nil:
			cerr = &check.Violation{Property: check.PropStarvation, Err: runErr}
		case spec.Strength == workload.Strong:
			cerr = check.Strong(res, 1<<20)
		default:
			cerr = check.Weak(res)
		}
		if o.verbose {
			fmt.Printf("  %s/%v %-40s %s\n", spec.Name, mdl, pl, verdict(cerr))
		}
		if cerr == nil {
			continue
		}
		violations++
		fmt.Printf("FAIL %s/%v %s: %v\n", spec.Name, mdl, pl, cerr)
		if path, rerr := record(spec, mdl, sc, pl, i, cerr, o.outDir); rerr != nil {
			fmt.Printf("  repro: %v\n", rerr)
		} else {
			fmt.Printf("  repro written to %s\n", path)
		}
	}
	nAborts := 0
	for _, pl := range plan.Placements {
		if pl.HasAborts() {
			nAborts++
		}
	}
	fmt.Printf("%-10s %v: %d placements (%d abort, %d instructions traced), %d violations\n",
		spec.Name, mdl, len(plan.Placements), nAborts, traced(plan), violations)
	return len(plan.Placements), violations, nil
}

func traced(plan *sim.SweepPlan) int {
	total := 0
	for _, s := range plan.Streams {
		total += len(s)
	}
	return total
}

func record(spec workload.Spec, mdl memory.Model, sc sim.SweepConfig, pl sim.Placement, idx int, observed error, outDir string) (string, error) {
	cfg := sc.Config
	if pl.HasAborts() {
		cfg.Plan = &sim.FaultSet{
			Crashes: sim.CrashSet{Points: append([]sim.CrashPoint{}, pl.Points...)},
			Aborts:  sim.AbortSet{Points: append([]sim.CrashPoint{}, pl.Aborts...)},
		}
	} else {
		cfg.Plan = &sim.CrashSet{Points: append([]sim.CrashPoint{}, pl.Points...)}
	}
	strength := repro.StrengthStrong
	if spec.Strength == workload.Weak {
		strength = repro.StrengthWeak
	}
	art, _, err := repro.Record(repro.RunSpec{
		Lock:       spec.Name,
		Strength:   strength,
		BCSRMaxOps: 1 << 20,
		Config:     cfg,
		Note:       fmt.Sprintf("rmesweep %s/%v placement %d (%s): %v", spec.Name, mdl, idx, pl, observed),
	}, spec.New)
	if err != nil {
		return "", err
	}
	if art.Property == "" {
		return "", fmt.Errorf("placement did not reproduce under the recording scheduler")
	}
	art = repro.Shrink(art, spec.New)
	path := filepath.Join(outDir, fmt.Sprintf("repro-sweep-%s-%v-p%d.json", spec.Name, mdl, idx))
	if err := art.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

func verdict(err error) string {
	if err != nil {
		return "VIOLATED — " + err.Error()
	}
	return "ok"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rmesweep: %v\n", err)
	os.Exit(1)
}

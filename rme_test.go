package rme

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rme/internal/memory"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := New(2, WithLevels(-1)); err == nil {
		t.Fatal("expected error for negative levels")
	}
	if _, err := New(2, WithBase(Base(99))); err == nil {
		t.Fatal("expected error for unknown base")
	}
	// A negative slack would shrink the arena below the sizer-measured
	// footprint and build a corrupt under-sized arena; it must be
	// rejected up front, like a negative capacity.
	if _, err := New(2, WithSlack(-1)); err == nil {
		t.Fatal("expected error for negative slack")
	}
	if _, err := New(2, WithoutReclamation(), WithSlack(-512)); err == nil {
		t.Fatal("expected error for negative slack without reclamation")
	}
	if _, err := New(2, WithCapacity(-1)); err == nil {
		t.Fatal("expected error for negative capacity")
	}
	// Map-only options are rejected by New rather than silently ignored.
	if _, err := New(2, WithShards(4)); err == nil {
		t.Fatal("expected error for WithShards on New")
	}
	if _, err := New(2, WithSegmentSlots(16)); err == nil {
		t.Fatal("expected error for WithSegmentSlots on New")
	}
}

func TestSequentialPassages(t *testing.T) {
	for _, base := range []Base{BaseTournament, BaseArbTree} {
		m, err := New(4, WithBase(base))
		if err != nil {
			t.Fatal(err)
		}
		if m.N() != 4 {
			t.Fatalf("N = %d", m.N())
		}
		count := 0
		for pid := 0; pid < 4; pid++ {
			for k := 0; k < 3; k++ {
				if !m.Passage(pid, func() { count++ }) {
					t.Fatalf("passage failed without injection (base %d)", base)
				}
			}
		}
		if count != 12 {
			t.Fatalf("count = %d, want 12", count)
		}
	}
}

func TestLockUnlockDirect(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Lock(0)
	m.Unlock(0)
	m.Lock(1)
	m.Unlock(1)
}

func TestPidRangePanics(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range pid")
		}
	}()
	m.Lock(5)
}

func TestConcurrentMutualExclusion(t *testing.T) {
	const (
		n        = 8
		passages = 200
	)
	m, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// The critical section mutates plain (non-atomic) shared state: the
	// race detector turns any mutual exclusion bug into a reported race,
	// and the final count checks lost updates.
	var counter int
	var inCS int32
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < passages; k++ {
				m.Lock(pid)
				if !atomic.CompareAndSwapInt32(&inCS, 0, 1) {
					t.Error("two processes in the critical section")
				}
				counter++
				atomic.StoreInt32(&inCS, 0)
				m.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if counter != n*passages {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, n*passages)
	}
}

func TestConcurrentWithInjectedFailures(t *testing.T) {
	const (
		n        = 6
		passages = 120
	)
	var injected atomic.Int64
	// Per-process seeded RNGs keep the hook race-free (a pid is driven
	// by one goroutine at a time).
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i) + 1))
	}
	fail := func(pid int) bool {
		if injected.Load() >= 25 {
			return false
		}
		if rngs[pid].Float64() < 0.002 {
			injected.Add(1)
			return true
		}
		return false
	}
	m, err := New(n, WithFailures(fail))
	if err != nil {
		t.Fatal(err)
	}
	var counter int
	var inCS int32
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < passages; k++ {
				for !m.Passage(pid, func() {
					if !atomic.CompareAndSwapInt32(&inCS, 0, 1) {
						t.Error("two processes in the critical section")
					}
					counter++
					atomic.StoreInt32(&inCS, 0)
				}) {
					// Crashed mid-acquisition: recover and retry, as the
					// paper's execution model prescribes.
				}
			}
		}(pid)
	}
	wg.Wait()
	// A crash between the critical section and the end of Exit re-runs
	// the (idempotent) CS on retry — the paper's super-passage semantics
	// — so the count may exceed the passage count by at most one per
	// failure, and must never fall short (no lost updates).
	inj := int(injected.Load())
	if counter < n*passages || counter > n*passages+inj {
		t.Fatalf("counter = %d, want in [%d, %d] (%d injected failures)",
			counter, n*passages, n*passages+inj, inj)
	}
	if inj == 0 {
		t.Skip("no failures injected; raise the rate to exercise recovery")
	}
}

// TestRaceStress hammers the NativeArena-backed Mutex with many
// processes, many passages, and a high crash rate. It exists to give the
// race detector (CI runs it with -race -count=2) a dense interleaving to
// chew on: every Port operation, recovery path, and failure hook fires
// thousands of times under real goroutine contention.
func TestRaceStress(t *testing.T) {
	n := 8
	passages := 400
	maxInjected := int64(300)
	if testing.Short() {
		passages = 60
		maxInjected = 40
	}
	var injected atomic.Int64
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i) + 101))
	}
	fail := func(pid int) bool {
		if injected.Load() >= maxInjected {
			return false
		}
		if rngs[pid].Float64() < 0.01 {
			injected.Add(1)
			return true
		}
		return false
	}
	m, err := New(n, WithFailures(fail))
	if err != nil {
		t.Fatal(err)
	}
	var counter int
	var inCS int32
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < passages; k++ {
				for !m.Passage(pid, func() {
					if !atomic.CompareAndSwapInt32(&inCS, 0, 1) {
						t.Error("two processes in the critical section")
					}
					counter++
					atomic.StoreInt32(&inCS, 0)
				}) {
					// Crashed mid-acquisition: recover and retry.
				}
			}
		}(pid)
	}
	wg.Wait()
	inj := int(injected.Load())
	if counter < n*passages || counter > n*passages+inj {
		t.Fatalf("counter = %d, want in [%d, %d] (%d injected failures)",
			counter, n*passages, n*passages+inj, inj)
	}
	if inj == 0 {
		t.Fatal("no failures injected; the stress run must exercise recovery")
	}
}

func TestCrashInsideCriticalSection(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	attempt := 0
	for !m.Passage(0, func() {
		attempt++
		if attempt == 1 {
			Crash(0) // fail while holding the lock
		}
	}) {
	}
	if attempt != 2 {
		t.Fatalf("critical section ran %d times, want 2 (crash then re-entry)", attempt)
	}
	// The lock must be fully released afterwards: process 1 can acquire.
	if !m.Passage(1, func() {}) {
		t.Fatal("lock stuck after in-CS crash recovery")
	}
}

func TestFootprintBoundedWithReclamation(t *testing.T) {
	m, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Footprint()
	for k := 0; k < 300; k++ {
		pid := k % 4
		if !m.Passage(pid, func() {}) {
			t.Fatal("unexpected crash")
		}
	}
	if got := m.Footprint(); got != before {
		t.Fatalf("footprint grew from %d to %d despite reclamation", before, got)
	}
}

func TestWithoutReclamationGrows(t *testing.T) {
	m, err := New(2, WithoutReclamation())
	if err != nil {
		t.Fatal(err)
	}
	before := m.Footprint()
	for k := 0; k < 50; k++ {
		m.Lock(0)
		m.Unlock(0)
	}
	if got := m.Footprint(); got <= before {
		t.Fatalf("footprint did not grow without reclamation: %d → %d", before, got)
	}
}

func TestWithCapacityFloor(t *testing.T) {
	small, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	// A capacity below the measured footprint is a no-op floor...
	m, err := New(2, WithCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Footprint() != small.Footprint() {
		t.Fatalf("tiny WithCapacity changed the layout: %d vs %d", m.Footprint(), small.Footprint())
	}
	// ...and a negative one is rejected.
	if _, err := New(2, WithCapacity(-1)); err == nil {
		t.Fatal("negative capacity accepted")
	}
	// A large floor pre-sizes the arena without perturbing addresses: the
	// lock still works and its footprint (allocated words) is unchanged.
	big, err := New(2, WithCapacity(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if big.Footprint() != small.Footprint() {
		t.Fatalf("WithCapacity perturbed the layout: %d vs %d", big.Footprint(), small.Footprint())
	}
	if !big.Passage(0, func() {}) {
		t.Fatal("passage failed on pre-sized arena")
	}
}

// TestUnpaddedArenaOption: the legacy dense layout must remain a fully
// working lock (it is the benchmark baseline), just a smaller one.
func TestUnpaddedArenaOption(t *testing.T) {
	padded, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := New(4, WithUnpaddedArena())
	if err != nil {
		t.Fatal(err)
	}
	if dense.Footprint() >= padded.Footprint() {
		t.Fatalf("dense layout (%d words) not smaller than padded (%d words)",
			dense.Footprint(), padded.Footprint())
	}
	var wg sync.WaitGroup
	counter := 0
	for pid := 0; pid < 4; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				dense.Passage(pid, func() { counter++ })
			}
		}(pid)
	}
	wg.Wait()
	if counter != 4*200 {
		t.Fatalf("unpadded mutex lost increments: %d", counter)
	}
}

func TestOptionsCombinations(t *testing.T) {
	for _, opts := range [][]Option{
		{WithBase(BaseArbTree), WithLevels(2)},
		{WithLevels(1)},
		{WithoutReclamation(), WithSlack(1 << 12)},
		{WithUnpaddedArena()},
		{WithUnpaddedArena(), WithoutReclamation(), WithSlack(1 << 12)},
		{WithCapacity(1 << 14), WithoutReclamation()},
	} {
		m, err := New(3, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Passage(1, func() {}) {
			t.Fatal("passage failed")
		}
	}
}

// TestPassageIgnoresForeignCrashSentinel is the regression test for the
// sentinel-swallowing bug: Passage must convert only its own process's
// crash sentinel into a false return. A Crash for a different PID raised
// inside the critical section (e.g. from a nested mutex's injection
// unwinding through this one) is not this passage's failure and must
// propagate as a panic, never be silently absorbed as "retry me".
func TestPassageIgnoresForeignCrashSentinel(t *testing.T) {
	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	// Own sentinel: converted to ok=false exactly once, then recovery.
	crashed := false
	for !m.Passage(0, func() {
		if !crashed {
			crashed = true
			Crash(0)
		}
	}) {
	}
	if !crashed {
		t.Fatal("own-pid crash never fired")
	}

	// Foreign sentinel: re-panics out of Passage.
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("Passage swallowed a foreign crash sentinel")
		}
		crash, ok := e.(memory.ErrCrash)
		if !ok || crash.PID != 1 {
			t.Fatalf("unexpected panic value %v", e)
		}
		// The swallowing bug would also have leaked the held lock; after
		// the propagated panic process 0's next passage must still work
		// (Recover releases or re-enters per BCSR).
		if !m.Passage(0, func() {}) {
			t.Fatal("lock unusable after foreign sentinel propagated")
		}
	}()
	m.Passage(0, func() { Crash(1) })
}

package rme

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rme/internal/core"
	"rme/internal/flight"
	"rme/internal/memory"
	"rme/internal/metrics"
)

// Map is a keyed lock manager: a dynamic set of named recoverable
// mutexes for n processes, instantiated lazily and recycled as keys
// churn. Each key gets its own full BA-Lock — the same algorithm a
// Mutex wraps — built inside a sub-arena region carved from a shard's
// arena segment, so per-key locks keep the cache-line padding and
// deterministic NativeSizer-measured layout of a standalone Mutex.
//
// Keys hash over a power-of-two number of shards. A shard's mutex
// serializes only key-table bookkeeping (lookup, instantiation,
// eviction); passages themselves run lock-free through the per-key
// BA-Lock's ports, so contention on distinct keys never interacts.
//
// Key lifecycle: a key is instantiated on first acquisition, stays live
// while any process is engaged with it (acquiring, holding, or crashed
// mid-passage on it), and becomes evictable when idle. When a shard
// needs a region for a new key it reuses a recycled one, carves a fresh
// one from the current segment, or evicts the least-recently-used idle
// key — growing a new segment only when every live key is pinned. A
// region is recycled only at quiescence (no engaged process, no pending
// crashed claim), zeroed, and rebuilt in place; a process that crashed
// while holding or queued on a key therefore always finds its lock
// state intact when it recovers, no matter how many other keys churned
// in between.
//
// Process identifiers are 0..n-1 across the whole Map: at any moment at
// most one goroutine may act as a given process, and a process runs at
// most one passage (over all keys) at a time. A process that crashed
// mid-acquisition on one key may move on to other keys — the abandoned
// claim pins the old key until the process comes back and recovers it —
// but crashing inside a critical section requires recovering the same
// key first (bounded critical-section re-entry is per key).
type Map struct {
	n         int
	cfg       config
	spec      core.LockSpec
	slotLines int // region length of one per-key lock, in cache lines
	slotWords int
	segSlots  int
	shards    []*mapShard
	mask      uint32
	fr        *flight.Recorder // nil unless WithTracing
	fail      memory.FailFunc
	aborts    []abortFlag
	cur       []curEntry
}

// curEntry is one process's current engagement, written only by the
// goroutine acting as that process. Padded so neighbouring processes'
// engagements never share a cache line.
type curEntry struct {
	e    *mapEntry
	p    memory.Port
	inCS bool
	_    [39]byte // pad to one cache line
}

// mapShard owns one slice of the key space: its key table, its arena
// segments, and its free list of recycled regions. All fields are
// guarded by mu except the segments' arenas themselves, which passages
// access through ports without locking.
type mapShard struct {
	m  *Map
	mu sync.Mutex

	entries  map[string]*mapEntry
	segments []*mapSegment
	free     []subSlot
	clock    uint64 // LRU stamp source

	instantiated uint64 // keys built (fresh or into a recycled region)
	recycled     uint64 // instantiations that reused a recycled region
	evictions    uint64 // idle keys evicted
}

// mapSegment is one fixed-capacity arena a shard carves per-key regions
// from, with its own metrics recorder (per-key RMR accounting needs a
// version table covering the segment) and lazily created per-process
// ports.
type mapSegment struct {
	arena  *memory.NativeArena
	rec    *metrics.Recorder // nil unless WithMetrics
	ports  []memory.Port
	carved int
}

// subSlot is a carved region and the segment it belongs to.
type subSlot struct {
	seg *mapSegment
	sub *memory.SubArena
}

// mapEntry is one live key: its lock, its region, and its lifecycle
// accounting (all guarded by the owning shard's mu).
type mapEntry struct {
	key   string
	shard *mapShard
	slot  subSlot
	lock  *core.BALock

	refs     int    // processes engaged (cur[pid].e == this)
	pending  []bool // pending[pid]: crashed claim abandoned by pid
	npending int
	stamp    uint64 // last-use clock, for LRU eviction
}

// NewMap creates a keyed lock manager for n processes.
//
// Map-specific options are WithShards and WithSegmentSlots; the lock
// recipe options (WithBase, WithLevels), failure injection, WithMetrics
// and WithTracing apply to every per-key lock. WithUnpaddedArena,
// WithoutReclamation, WithSlack and WithCapacity do not apply to maps
// and are rejected: regions require the padded line discipline, and
// per-key locks must pool their queue nodes or a long-lived key's
// region would exhaust.
func NewMap(n int, opts ...Option) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("rme: NewMap(%d): need at least one process", n)
	}
	cfg := config{base: BaseTournament, reclamation: true}
	for _, o := range opts {
		o(&cfg)
	}
	switch {
	case cfg.unpadded:
		return nil, fmt.Errorf("rme: NewMap does not support WithUnpaddedArena (regions need the padded layout)")
	case !cfg.reclamation:
		return nil, fmt.Errorf("rme: NewMap does not support WithoutReclamation (per-key locks must pool queue nodes)")
	case cfg.slack != 0 || cfg.capacity != 0:
		return nil, fmt.Errorf("rme: NewMap does not support WithSlack/WithCapacity (regions are sized exactly)")
	case cfg.shards < 0:
		return nil, fmt.Errorf("rme: negative shard count %d", cfg.shards)
	case cfg.segSlots < 0:
		return nil, fmt.Errorf("rme: negative segment slot count %d", cfg.segSlots)
	}
	if cfg.shards == 0 {
		cfg.shards = 8
	}
	shards := 1
	for shards < cfg.shards {
		shards <<= 1
	}
	if cfg.segSlots == 0 {
		cfg.segSlots = 64
	}
	spec, err := cfg.lockSpec(n)
	if err != nil {
		return nil, err
	}
	cfg.levels = spec.Levels

	// Measure one per-key lock's region footprint; every region is
	// carved with exactly this line count and the construction replays
	// into it deterministically.
	szr := memory.NewSubSizer(n)
	spec.Build(szr, n)

	ma := &Map{
		n:         n,
		cfg:       cfg,
		spec:      spec,
		slotLines: szr.Lines(),
		slotWords: szr.Lines() * memory.LineWords,
		segSlots:  cfg.segSlots,
		shards:    make([]*mapShard, shards),
		mask:      uint32(shards - 1),
		aborts:    make([]abortFlag, n),
		cur:       make([]curEntry, n),
	}
	if cfg.fail != nil || cfg.labelFail != nil {
		plain, labeled := cfg.fail, cfg.labelFail
		ma.fail = func(pid int, op memory.OpInfo) bool {
			if plain != nil && plain(pid) {
				return true
			}
			return labeled != nil && labeled(pid, op.Label)
		}
	}
	if cfg.tracing {
		ma.fr = flight.NewRecorder(n, cfg.tracingOpts.RingSize)
		if cfg.tracingOpts.Disabled {
			ma.fr.SetEnabled(false)
		}
	}
	for i := range ma.shards {
		ma.shards[i] = &mapShard{m: ma, entries: make(map[string]*mapEntry)}
	}
	return ma, nil
}

// N returns the number of processes.
func (ma *Map) N() int { return ma.n }

// SlotWords returns the region footprint of one per-key lock, in words.
func (ma *Map) SlotWords() int { return ma.slotWords }

// shardOf hashes key (FNV-1a) onto its shard.
func (ma *Map) shardOf(key string) *mapShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return ma.shards[h&ma.mask]
}

// newSegment builds one arena segment: the null line plus segSlots
// regions' worth of capacity.
func (ma *Map) newSegment() *mapSegment {
	capacity := (1 + ma.segSlots*ma.slotLines) * memory.LineWords
	sg := &mapSegment{
		arena: memory.NewNativeArena(ma.n, capacity),
		ports: make([]memory.Port, ma.n),
	}
	if ma.cfg.metrics {
		sg.rec = metrics.NewRecorder(ma.n, ma.cfg.levels+1, sg.arena.Capacity())
	}
	return sg
}

// ensurePort lazily creates process pid's port onto the segment, wired
// exactly like a Mutex port: failure injection, the abort-flag poll,
// label observation for the flight recorder, and the counting wrapper
// when metrics are on. Called under the owning shard's mu, from the
// goroutine acting as pid.
func (sg *mapSegment) ensurePort(ma *Map, pid int) {
	if sg.ports[pid] != nil {
		return
	}
	np := sg.arena.Port(pid, ma.fail)
	flag := &ma.aborts[pid].v
	np.SetAbortHook(func(int) bool { return flag.Load() })
	if ma.fr != nil {
		pid, fr := pid, ma.fr
		np.SetLabelHook(func(l string) { fr.ObserveLabel(pid, l) })
	}
	if sg.rec != nil {
		sg.ports[pid] = sg.rec.Port(np)
	} else {
		sg.ports[pid] = np
	}
}

// slotFor hands out a region for a new key, in footprint order: a
// recycled region first, then an uncarved slot in the current segment,
// then the region of an evicted idle key, and only when every live key
// is pinned a fresh segment. Called under mu.
func (sh *mapShard) slotFor() subSlot {
	if k := len(sh.free); k > 0 {
		s := sh.free[k-1]
		sh.free = sh.free[:k-1]
		sh.recycled++
		return s
	}
	if k := len(sh.segments); k > 0 {
		if sg := sh.segments[k-1]; sg.carved < sh.m.segSlots {
			sg.carved++
			return subSlot{seg: sg, sub: sg.arena.Carve(sh.m.slotLines)}
		}
	}
	if s, ok := sh.evictLocked(); ok {
		sh.recycled++
		return s
	}
	sg := sh.m.newSegment()
	sh.segments = append(sh.segments, sg)
	sg.carved++
	return subSlot{seg: sg, sub: sg.arena.Carve(sh.m.slotLines)}
}

// evictLocked evicts the least-recently-used idle key (no engaged
// process, no pending crashed claim) and returns its recycled region.
func (sh *mapShard) evictLocked() (subSlot, bool) {
	var victim *mapEntry
	for _, e := range sh.entries {
		if e.refs == 0 && e.npending == 0 && (victim == nil || e.stamp < victim.stamp) {
			victim = e
		}
	}
	if victim == nil {
		return subSlot{}, false
	}
	delete(sh.entries, victim.key)
	sh.evictions++
	sh.recycle(victim.slot)
	return victim.slot, true
}

// recycle resets a region for reuse: zeroed words, restarted allocator,
// and — when metrics are on — the region's addresses marked as new
// memory so no process's CC cache survives into the next key's lock.
func (sh *mapShard) recycle(s subSlot) {
	s.sub.Reset()
	if s.seg.rec != nil {
		lo, hi := s.sub.Bounds()
		s.seg.rec.InvalidateRange(lo, hi)
	}
}

// acquire looks up or instantiates key's entry and engages pid with it.
func (sh *mapShard) acquire(pid int, key string) *mapEntry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[key]
	if e == nil {
		slot := sh.slotFor()
		e = &mapEntry{
			key:     key,
			shard:   sh,
			slot:    slot,
			lock:    sh.m.spec.Build(slot.sub, sh.m.n),
			pending: make([]bool, sh.m.n),
		}
		if fr := sh.m.fr; fr != nil {
			e.lock.SetPhaseHook(func(pid int, ph core.PhaseKind, level int) {
				fr.Phase(pid, flightPhaseKind(ph), level)
			})
		}
		sh.entries[key] = e
		sh.instantiated++
	}
	if e.pending[pid] {
		e.pending[pid] = false
		e.npending--
	}
	e.refs++
	sh.clock++
	e.stamp = sh.clock
	e.slot.seg.ensurePort(sh.m, pid)
	return e
}

// begin resolves pid's engagement for a passage on key: a recovery
// continues the existing engagement; a crashed claim on a different key
// is parked as pending (pinning that key's region) before the new key
// is engaged.
func (ma *Map) begin(pid int, key string) *mapEntry {
	if pid < 0 || pid >= ma.n {
		panic(fmt.Sprintf("rme: pid %d out of range [0,%d)", pid, ma.n))
	}
	c := &ma.cur[pid]
	if c.e != nil {
		if c.e.key == key {
			return c.e
		}
		if c.inCS {
			panic(fmt.Sprintf("rme: process %d holds key %q; nested Map passages are not supported", pid, c.e.key))
		}
		old := c.e
		sh := old.shard
		sh.mu.Lock()
		if !old.pending[pid] {
			old.pending[pid] = true
			old.npending++
		}
		old.refs--
		sh.mu.Unlock()
		c.e, c.p = nil, nil
	}
	e := ma.shardOf(key).acquire(pid, key)
	c.e = e
	c.p = e.slot.seg.ports[pid]
	return e
}

// finish releases pid's engagement after a clean passage end or a
// completed back-out.
func (ma *Map) finish(pid int, e *mapEntry) {
	sh := e.shard
	sh.mu.Lock()
	e.refs--
	sh.mu.Unlock()
	c := &ma.cur[pid]
	c.e, c.p, c.inCS = nil, nil, false
}

// Lock acquires key's lock as process pid, instantiating the key if
// needed. Like Mutex.Lock it is the correct call both for first
// acquisition and for recovery after a failure on the same key.
func (ma *Map) Lock(pid int, key string) {
	e := ma.begin(pid, key)
	c := &ma.cur[pid]
	if rec := e.slot.seg.rec; rec != nil {
		rec.PassageStart(pid)
	}
	if ma.fr != nil {
		ma.fr.PassageBegin(pid)
	}
	e.lock.Recover(c.p)
	e.lock.Enter(c.p)
	c.inCS = true
	if ma.fr != nil {
		ma.fr.CSEnter(pid)
	}
}

// Unlock releases key's lock as process pid.
func (ma *Map) Unlock(pid int, key string) {
	c := &ma.cur[pid]
	if c.e == nil || c.e.key != key {
		held := "nothing"
		if c.e != nil {
			held = fmt.Sprintf("%q", c.e.key)
		}
		panic(fmt.Sprintf("rme: process %d unlocking key %q but holds %s", pid, key, held))
	}
	e := c.e
	if ma.fr != nil {
		ma.fr.CSExit(pid)
	}
	e.lock.Exit(c.p)
	if rec := e.slot.seg.rec; rec != nil {
		rec.PassageEnd(pid)
	}
	if ma.fr != nil {
		ma.fr.PassageEnd(pid)
	}
	ma.finish(pid, e)
}

// Passage runs one passage on key: Recover, Enter, cs, Exit. It reports
// false if an injected failure interrupted the passage, in which case
// the caller should retry with the same key (the crashed claim keeps
// the key pinned until recovered).
func (ma *Map) Passage(pid int, key string, cs func()) (ok bool) {
	defer func() {
		e := recover()
		if e == nil {
			return
		}
		if crash, crashed := e.(memory.ErrCrash); crashed && crash.PID == pid {
			if c := &ma.cur[pid]; c.e != nil {
				if rec := c.e.slot.seg.rec; rec != nil {
					rec.Crash(pid)
				}
			}
			if ma.fr != nil {
				ma.fr.Crash(pid)
			}
			ok = false
			return
		}
		panic(e)
	}()
	ma.Lock(pid, key)
	cs()
	ma.Unlock(pid, key)
	return true
}

// LockCtx acquires key's lock as process pid, giving up when ctx is
// cancelled, with exactly Mutex.LockCtx's semantics and accounting:
// every cancelled attempt — pre-cancelled, mid-spin, or at the
// post-acquisition check — closes as one aborted attempt, never as a
// passage, and the process then holds nothing on the key.
func (ma *Map) LockCtx(ctx context.Context, pid int, key string) error {
	if err := ctx.Err(); err != nil {
		e := ma.begin(pid, key)
		if rec := e.slot.seg.rec; rec != nil {
			rec.PassageStart(pid)
			rec.Abort(pid)
		}
		if ma.fr != nil {
			ma.fr.PassageBegin(pid)
			ma.fr.Abort(pid)
		}
		ma.finish(pid, e)
		return err
	}
	e := ma.begin(pid, key)
	c := &ma.cur[pid]
	rec := e.slot.seg.rec

	w := watchCtx(ctx, &ma.aborts[pid].v)
	defer w.Stop()

	if rec != nil {
		rec.PassageStart(pid)
	}
	if ma.fr != nil {
		ma.fr.PassageBegin(pid)
	}
	if enterAborted(e.lock, c.p, pid) {
		w.Stop()
		e.lock.Abort(c.p)
		if rec != nil {
			rec.Abort(pid)
		}
		if ma.fr != nil {
			ma.fr.Abort(pid)
		}
		ma.finish(pid, e)
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	}
	if err := ctx.Err(); err != nil {
		w.Stop()
		e.lock.Exit(c.p)
		if rec != nil {
			rec.Abort(pid)
		}
		if ma.fr != nil {
			ma.fr.Abort(pid)
		}
		ma.finish(pid, e)
		return err
	}
	c.inCS = true
	if ma.fr != nil {
		ma.fr.CSEnter(pid)
	}
	return nil
}

// TryLockFor acquires key's lock as process pid, giving up after d; a
// non-positive d counts one aborted attempt without touching the lock,
// exactly like Mutex.TryLockFor.
func (ma *Map) TryLockFor(pid int, key string, d time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return ma.LockCtx(ctx, pid, key) == nil
}

// PassageCtx runs one abortable passage on key; semantics follow
// Mutex.PassageCtx (ok=false with nil error on an injected crash,
// (false, ctx.Err()) on cancellation).
func (ma *Map) PassageCtx(ctx context.Context, pid int, key string, cs func()) (ok bool, err error) {
	defer func() {
		e := recover()
		if e == nil {
			return
		}
		if crash, crashed := e.(memory.ErrCrash); crashed && crash.PID == pid {
			if c := &ma.cur[pid]; c.e != nil {
				if rec := c.e.slot.seg.rec; rec != nil {
					rec.Crash(pid)
				}
			}
			if ma.fr != nil {
				ma.fr.Crash(pid)
			}
			ok, err = false, nil
			return
		}
		panic(e)
	}()
	if err := ma.LockCtx(ctx, pid, key); err != nil {
		return false, err
	}
	cs()
	ma.Unlock(pid, key)
	return true, nil
}

// EvictIdle evicts up to max idle keys map-wide (all of them when max
// <= 0), recycling their regions onto the shards' free lists. Keys with
// an engaged process or a pending crashed claim are never touched. It
// returns the number evicted. Passages may run concurrently.
func (ma *Map) EvictIdle(max int) int {
	evicted := 0
	for _, sh := range ma.shards {
		sh.mu.Lock()
		for max <= 0 || evicted < max {
			var victim *mapEntry
			for _, e := range sh.entries {
				if e.refs == 0 && e.npending == 0 && (victim == nil || e.stamp < victim.stamp) {
					victim = e
				}
			}
			if victim == nil {
				break
			}
			delete(sh.entries, victim.key)
			sh.evictions++
			sh.recycle(victim.slot)
			sh.free = append(sh.free, victim.slot)
			evicted++
		}
		sh.mu.Unlock()
		if max > 0 && evicted >= max {
			break
		}
	}
	return evicted
}

// Len returns the number of live keys.
func (ma *Map) Len() int {
	total := 0
	for _, sh := range ma.shards {
		sh.mu.Lock()
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	return total
}

// Footprint returns the Map's physical shared-memory footprint in
// words: the full capacity of every arena segment. It grows only when a
// shard runs out of recyclable regions, never with the total number of
// distinct keys touched.
func (ma *Map) Footprint() int {
	total := 0
	for _, sh := range ma.shards {
		sh.mu.Lock()
		for _, sg := range sh.segments {
			total += sg.arena.Capacity()
		}
		sh.mu.Unlock()
	}
	return total
}

// MapShardStats is one shard's lifecycle accounting.
type MapShardStats struct {
	Keys         int    // live keys
	Segments     int    // arena segments
	Free         int    // recycled regions awaiting reuse
	Instantiated uint64 // keys built
	Recycled     uint64 // instantiations that reused a recycled region
	Evictions    uint64 // idle keys evicted
}

// MapStats aggregates the Map's lifecycle accounting.
type MapStats struct {
	Keys           int
	Segments       int
	FootprintWords int
	SlotWords      int
	Instantiated   uint64
	Recycled       uint64
	Evictions      uint64
	Shards         []MapShardStats
}

// Stats returns the Map's current lifecycle statistics.
func (ma *Map) Stats() MapStats {
	s := MapStats{SlotWords: ma.slotWords, Shards: make([]MapShardStats, len(ma.shards))}
	for i, sh := range ma.shards {
		sh.mu.Lock()
		ss := MapShardStats{
			Keys:         len(sh.entries),
			Segments:     len(sh.segments),
			Free:         len(sh.free),
			Instantiated: sh.instantiated,
			Recycled:     sh.recycled,
			Evictions:    sh.evictions,
		}
		for _, sg := range sh.segments {
			s.FootprintWords += sg.arena.Capacity()
		}
		sh.mu.Unlock()
		s.Shards[i] = ss
		s.Keys += ss.Keys
		s.Segments += ss.Segments
		s.Instantiated += ss.Instantiated
		s.Recycled += ss.Recycled
		s.Evictions += ss.Evictions
	}
	return s
}

// MetricsSnapshot merges every segment's passage metrics into one
// Map-wide view; the second result is false when the map was built
// without WithMetrics. Like Mutex.MetricsSnapshot it may be called
// while passages are in flight.
func (ma *Map) MetricsSnapshot() (metrics.Snapshot, bool) {
	if !ma.cfg.metrics {
		return metrics.Snapshot{}, false
	}
	snaps, _ := ma.ShardMetricsSnapshots()
	var s metrics.Snapshot
	for i, sh := range snaps {
		if i == 0 {
			s = sh
		} else {
			s = s.Merge(sh)
		}
	}
	return s, true
}

// ShardMetricsSnapshots returns one merged snapshot per shard (the
// Map's key-class granularity: keys hashing to the same shard share a
// snapshot). The second result is false without WithMetrics.
func (ma *Map) ShardMetricsSnapshots() ([]metrics.Snapshot, bool) {
	if !ma.cfg.metrics {
		return nil, false
	}
	out := make([]metrics.Snapshot, len(ma.shards))
	for i, sh := range ma.shards {
		sh.mu.Lock()
		segs := append([]*mapSegment(nil), sh.segments...)
		sh.mu.Unlock()
		for j, sg := range segs {
			if j == 0 {
				out[i] = sg.rec.Snapshot()
			} else {
				out[i] = out[i].Merge(sg.rec.Snapshot())
			}
		}
	}
	return out, true
}

// SetTracing starts or stops flight recording at runtime (no-op without
// WithTracing).
func (ma *Map) SetTracing(on bool) {
	if ma.fr != nil {
		ma.fr.SetEnabled(on)
	}
}

// TracingEnabled reports whether flight recording is currently active.
func (ma *Map) TracingEnabled() bool { return ma.fr != nil && ma.fr.Enabled() }

// FlightRecording snapshots the Map's flight recorder (events from
// passages on every key interleave per process). The second result is
// false without WithTracing.
func (ma *Map) FlightRecording() (*flight.Recording, bool) {
	if ma.fr == nil {
		return nil, false
	}
	return ma.fr.Snapshot(), true
}

// FlightProfile returns the Map-wide phase-latency profile. The second
// result is false without WithTracing.
func (ma *Map) FlightProfile() (flight.Profile, bool) {
	if ma.fr == nil {
		return flight.Profile{}, false
	}
	return ma.fr.Profile(), true
}

package rme

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(0); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewMap(2, WithUnpaddedArena()); err == nil {
		t.Fatal("expected error for unpadded map")
	}
	if _, err := NewMap(2, WithoutReclamation()); err == nil {
		t.Fatal("expected error for map without reclamation")
	}
	if _, err := NewMap(2, WithSlack(64)); err == nil {
		t.Fatal("expected error for map with slack")
	}
	if _, err := NewMap(2, WithCapacity(1024)); err == nil {
		t.Fatal("expected error for map with capacity")
	}
	if _, err := NewMap(2, WithShards(-1)); err == nil {
		t.Fatal("expected error for negative shards")
	}
	if _, err := NewMap(2, WithSegmentSlots(-1)); err == nil {
		t.Fatal("expected error for negative segment slots")
	}
	if _, err := NewMap(2, WithBase(Base(99))); err == nil {
		t.Fatal("expected error for unknown base")
	}
	// Shard counts round up to a power of two.
	ma, err := NewMap(2, WithShards(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ma.shards); got != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", got)
	}
}

func TestMapBasic(t *testing.T) {
	ma, err := NewMap(4, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for i := 0; i < 10; i++ {
		for pid := 0; pid < 4; pid++ {
			key := "key-" + strconv.Itoa(pid%3)
			if !ma.Passage(pid, key, func() { count[key]++ }) {
				t.Fatal("passage failed without injection")
			}
		}
	}
	if count["key-0"]+count["key-1"]+count["key-2"] != 40 {
		t.Fatalf("counts = %v", count)
	}
	if ma.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ma.Len())
	}
	if ma.Footprint() <= 0 || ma.SlotWords() <= 0 {
		t.Fatalf("footprint=%d slotwords=%d", ma.Footprint(), ma.SlotWords())
	}
	s, ok := ma.MetricsSnapshot()
	if !ok || s.Passages != 40 {
		t.Fatalf("passages=%d ok=%v, want 40/true", s.Passages, ok)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: %+v", s)
	}
	st := ma.Stats()
	if st.Keys != 3 || st.Instantiated != 3 || st.SlotWords != ma.SlotWords() {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMapPerKeyIndependence: holding one key must not block passages on
// another.
func TestMapPerKeyIndependence(t *testing.T) {
	ma, err := NewMap(2)
	if err != nil {
		t.Fatal(err)
	}
	ma.Lock(0, "held")
	done := make(chan struct{})
	go func() {
		ma.Lock(1, "free")
		ma.Unlock(1, "free")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("passage on an unrelated key blocked behind a held key")
	}
	ma.Unlock(0, "held")
}

// TestMapMisuse pins the panic diagnostics for contract violations:
// nested passages and unlocking a key the process does not hold.
func TestMapMisuse(t *testing.T) {
	ma, err := NewMap(2)
	if err != nil {
		t.Fatal(err)
	}
	ma.Lock(0, "a")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nested Lock on a second key did not panic")
			}
		}()
		ma.Lock(0, "b")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Unlock of an unheld key did not panic")
			}
		}()
		ma.Unlock(0, "b")
	}()
	ma.Unlock(0, "a")
}

// TestMapRaceStress runs concurrent passages over a small key set with
// eviction pressure from a background sweeper; the plain per-key
// counters make the race detector an exact mutual-exclusion check, and
// the atomic occupancy flags make overlap explicit even without -race.
func TestMapRaceStress(t *testing.T) {
	const (
		n        = 4
		keys     = 6
		passages = 250
	)
	ma, err := NewMap(n, WithShards(2), WithSegmentSlots(4), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	counters := make([]int, keys)
	var inCS [keys]atomic.Int32
	stop := make(chan struct{})
	var sweeps atomic.Int64
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sweeps.Add(int64(ma.EvictIdle(2)))
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)*271 + 1))
			for i := 0; i < passages; i++ {
				k := rng.Intn(keys)
				key := "key-" + strconv.Itoa(k)
				if !ma.Passage(pid, key, func() {
					if !inCS[k].CompareAndSwap(0, 1) {
						t.Errorf("two processes in key %d's critical section", k)
					}
					counters[k]++
					inCS[k].Store(0)
				}) {
					t.Errorf("passage failed without injection")
				}
			}
		}(pid)
	}
	wg.Wait()
	close(stop)
	swg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != n*passages {
		t.Fatalf("counted %d passages, want %d", total, n*passages)
	}
	s, _ := ma.MetricsSnapshot()
	if s.Passages != n*passages {
		t.Fatalf("recorder counted %d passages, want %d", s.Passages, n*passages)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: %+v", s)
	}
	t.Logf("sweeper evicted %d idle keys mid-run; stats=%+v", sweeps.Load(), ma.Stats())
}

// TestMapCrashEvictionPressure: a process crashes while holding a key,
// other keys churn hard enough to evict everything idle, and the
// crashed key's state must survive untouched for the recovery.
func TestMapCrashEvictionPressure(t *testing.T) {
	ma, err := NewMap(2, WithShards(1), WithSegmentSlots(2), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	held := 0
	if ma.Passage(0, "held", func() { held++; Crash(0) }) {
		t.Fatal("passage completed despite the injected crash")
	}
	// pid 0 crashed inside its CS: the key is pinned (engaged claim),
	// the lock is held in the region. Churn far more keys than the
	// shard's two slots; every instantiation beyond the first must
	// recycle an idle region, never the crashed key's.
	for i := 0; i < 50; i++ {
		if !ma.Passage(1, "churn-"+strconv.Itoa(i), func() {}) {
			t.Fatal("churn passage failed")
		}
	}
	st := ma.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under churn pressure: %+v", st)
	}
	if st.Segments != 1 {
		t.Fatalf("footprint grew to %d segments with an evictable key set", st.Segments)
	}
	// Recovery: the same process re-enters (BCSR) and completes.
	if !ma.Passage(0, "held", func() { held++ }) {
		t.Fatal("recovery passage failed")
	}
	if held != 2 {
		t.Fatalf("critical section ran %d times, want 2 (crash + BCSR re-entry)", held)
	}
	s, _ := ma.MetricsSnapshot()
	if s.Crashes != 1 || s.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", s.Crashes, s.Recoveries)
	}
	// Now idle, the key is evictable like any other.
	if got := ma.EvictIdle(0); got < 1 {
		t.Fatalf("EvictIdle evicted %d keys, want at least the recovered one", got)
	}
	if ma.Len() != 0 {
		t.Fatalf("Len = %d after full eviction", ma.Len())
	}
}

// TestMapAbandonedClaimPinsKey: a process that crashed mid-acquisition
// on one key and moved on to another leaves a pending claim that pins
// the first key until it comes back and recovers.
func TestMapAbandonedClaimPinsKey(t *testing.T) {
	var arm atomic.Bool
	fail := func(pid int) bool { return pid == 0 && arm.CompareAndSwap(true, false) }
	ma, err := NewMap(2, WithShards(1), WithFailures(fail))
	if err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	if ma.Passage(0, "a", func() {}) {
		t.Fatal("passage on a completed despite the injected crash")
	}
	// Crashed mid-acquisition on "a"; move on to "b".
	if !ma.Passage(0, "b", func() {}) {
		t.Fatal("passage on b failed")
	}
	// "b" is idle and evictable; "a" is pinned by the pending claim.
	ma.EvictIdle(0)
	if ma.Len() != 1 {
		t.Fatalf("Len = %d after eviction, want 1 (the pinned key)", ma.Len())
	}
	// Coming back to "a" recovers the claim; afterwards it evicts too.
	if !ma.Passage(0, "a", func() {}) {
		t.Fatal("recovery passage on a failed")
	}
	ma.EvictIdle(0)
	if ma.Len() != 0 {
		t.Fatalf("Len = %d after recovery and eviction, want 0", ma.Len())
	}
}

// TestMapSweepAdversary2Keys sweeps an injected crash across pid 0's
// instruction stream on key "a" while pid 1 continuously runs passages
// on key "b": per-key mutual exclusion and BCSR must be independent —
// the adversary on one key never corrupts or starves the other.
func TestMapSweepAdversary2Keys(t *testing.T) {
	const rounds = 30
	var step, target, injected atomic.Int64
	fail := func(pid int) bool {
		if pid != 0 {
			return false
		}
		tg := target.Load()
		if tg > 0 && step.Add(1) == tg {
			injected.Add(1)
			return true
		}
		return false
	}
	ma, err := NewMap(2, WithShards(1), WithFailures(fail), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var bCount atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !ma.Passage(1, "b", func() { bCount.Add(1) }) {
				t.Error("pid 1 crashed; injection targets only pid 0")
				return
			}
		}
	}()
	// On a single-core box the sweep below can finish before the
	// scheduler ever runs pid 1; insist on overlap first.
	for bCount.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	aCount := 0
	for k := int64(1); k <= rounds; k++ {
		step.Store(0)
		target.Store(k)
		completed := false
		for try := 0; try < 1000 && !completed; try++ {
			completed = ma.Passage(0, "a", func() { aCount++ })
		}
		target.Store(0)
		if !completed {
			t.Fatalf("crash at op %d wedged key a", k)
		}
	}
	close(stop)
	wg.Wait()
	if aCount != rounds {
		t.Fatalf("key a's critical section ran %d times, want %d", aCount, rounds)
	}
	if bCount.Load() == 0 {
		t.Fatal("pid 1 starved on key b during the sweep")
	}
	s, _ := ma.MetricsSnapshot()
	if s.Crashes != uint64(injected.Load()) {
		t.Fatalf("recorder counted %d crashes, injected %d", s.Crashes, injected.Load())
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: %+v", s)
	}
	t.Logf("swept %d crash points (%d fired); b completed %d passages",
		rounds, injected.Load(), bCount.Load())
}

// TestMapChurnBoundedFootprint: touching an unbounded stream of
// distinct keys must not grow the arena footprint — reclaim recycles
// idle regions instead.
func TestMapChurnBoundedFootprint(t *testing.T) {
	const distinct = 400
	ma, err := NewMap(1, WithShards(1), WithSegmentSlots(4), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var after8 int
	for i := 0; i < distinct; i++ {
		if !ma.Passage(0, "churn-"+strconv.Itoa(i), func() {}) {
			t.Fatal("churn passage failed")
		}
		if i == 8 {
			after8 = ma.Footprint()
		}
	}
	st := ma.Stats()
	if got := ma.Footprint(); got != after8 {
		t.Fatalf("footprint grew from %d to %d words over %d distinct keys", after8, got, distinct)
	}
	if st.Segments != 1 {
		t.Fatalf("segments = %d, want 1", st.Segments)
	}
	if st.Evictions < distinct-8 {
		t.Fatalf("evictions = %d over %d distinct keys", st.Evictions, distinct)
	}
	if got := st.FootprintWords; got >= distinct*ma.SlotWords() {
		t.Fatalf("footprint %d words not bounded (distinct keys would need %d)", got, distinct*ma.SlotWords())
	}
	s, _ := ma.MetricsSnapshot()
	if s.Passages != distinct {
		t.Fatalf("passages=%d, want %d", s.Passages, distinct)
	}
}

// TestMapShardSnapshots: per-shard snapshots sum to the global one.
func TestMapShardSnapshots(t *testing.T) {
	ma, err := NewMap(2, WithShards(4), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := "k" + strconv.Itoa(i%7)
		if !ma.Passage(i%2, key, func() {}) {
			t.Fatal("passage failed")
		}
	}
	global, ok := ma.MetricsSnapshot()
	if !ok {
		t.Fatal("metrics off")
	}
	shards, ok := ma.ShardMetricsSnapshots()
	if !ok || len(shards) != 4 {
		t.Fatalf("shard snapshots: ok=%v len=%d", ok, len(shards))
	}
	var passages, attempts, rmrs uint64
	for _, s := range shards {
		passages += s.Passages
		attempts += s.Attempts
		rmrs += s.RMRs
	}
	if passages != global.Passages || attempts != global.Attempts || rmrs != global.RMRs {
		t.Fatalf("shard sums (p=%d a=%d r=%d) != global (p=%d a=%d r=%d)",
			passages, attempts, rmrs, global.Passages, global.Attempts, global.RMRs)
	}
	if global.Passages != 20 {
		t.Fatalf("passages = %d, want 20", global.Passages)
	}
}

// TestMapAbortable covers the context paths on a Map: pre-cancellation,
// non-positive deadlines, expiry while queued, and late cancellation —
// each exactly one aborted attempt, mirroring the Mutex accounting.
func TestMapAbortable(t *testing.T) {
	ma, err := NewMap(2, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ma.LockCtx(ctx, 0, "k"); err != context.Canceled {
		t.Fatalf("pre-cancelled LockCtx = %v", err)
	}
	if ma.TryLockFor(0, "k", 0) {
		t.Fatal("TryLockFor(0) acquired")
	}
	ma.Lock(0, "k")
	if ma.TryLockFor(1, "k", 100*time.Microsecond) {
		t.Fatal("TryLockFor succeeded against a held key")
	}
	ma.Unlock(0, "k")
	if err := ma.LockCtx(&lateCancelCtx{}, 0, "k"); err != context.Canceled {
		t.Fatalf("late-cancelled LockCtx = %v", err)
	}
	// The back-outs left the key free for both processes.
	for pid := 0; pid < 2; pid++ {
		if !ma.Passage(pid, "k", func() {}) {
			t.Fatal("passage failed after back-outs")
		}
	}
	s, _ := ma.MetricsSnapshot()
	// 3 passages: the Lock/Unlock pair above plus the two loop passages.
	if s.Passages != 3 || s.Aborted != 4 {
		t.Fatalf("passages=%d aborted=%d, want 3/4", s.Passages, s.Aborted)
	}
	if s.Attempts != s.Passages+s.Aborted+s.CrashedAttempts {
		t.Fatalf("identity broken: %+v", s)
	}
	if got := s.AbortRMRHist.Total(); got != s.Aborted {
		t.Fatalf("abort histogram holds %d samples, aborted=%d", got, s.Aborted)
	}

	// PassageCtx on a held key backs out with the deadline error.
	ma.Lock(0, "k")
	dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer dcancel()
	ran := false
	ok, err := ma.PassageCtx(dctx, 1, "k", func() { ran = true })
	if ok || err != context.DeadlineExceeded || ran {
		t.Fatalf("PassageCtx = (%v, %v, ran=%v)", ok, err, ran)
	}
	ma.Unlock(0, "k")
}
